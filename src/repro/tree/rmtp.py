"""Tree-based repair-server baseline (RMTP-like, paper ref [12]).

In tree-based reliable multicast (RMTP, LBRRM, TMTP — §1/§2), each
local region designates a *repair server*: receivers NACK their region
server, the server retransmits from its buffer, and a server missing a
message NACKs the server of its parent region.  The buffering
consequence is what this reproduction cares about (§1): **the repair
server buffers every packet of the session** ("the RMTP protocol …
buffers the entire file"), while ordinary receivers buffer nothing, so
one member per region carries the whole load — the contrast to RRMP's
spread-out two-phase scheme.

The implementation reuses the simulation substrate (engine, network,
topology, gap tracking, session messages) and emits the same trace
kinds as RRMP (``recovery_completed``, ``buffer_add``), so the
policy-comparison experiments read both protocols with one code path.
Flow control and ACK aggregation are out of scope: they do not affect
buffer occupancy or recovery-latency shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.buffer import MessageBuffer
from repro.net.ipmulticast import MulticastOutcome, PerfectOutcome
from repro.net.latency import HierarchicalLatency, LatencyModel
from repro.net.loss import LossModel
from repro.net.packet import KIND_CONTROL
from repro.net.topology import Hierarchy, NodeId, RegionId
from repro.net.transport import Network, Packet
from repro.protocol.loss_detection import GapTracker
from repro.protocol.messages import (
    CONTROL_WIRE_SIZE,
    DATA_WIRE_SIZE,
    DataMessage,
    Seq,
    SessionMessage,
)
from repro.sim import PeriodicTask, RandomStreams, Simulator, Timer, TraceLog


@dataclass(frozen=True)
class Nack:
    """Negative acknowledgement sent to a repair server."""

    seq: Seq
    requester: NodeId
    kind: str = field(default=KIND_CONTROL, repr=False)
    wire_size: int = field(default=CONTROL_WIRE_SIZE, repr=False)


@dataclass(frozen=True)
class TreeRepair:
    """Retransmission from a repair server."""

    data: DataMessage
    responder: NodeId
    kind: str = field(default="data", repr=False)
    wire_size: int = field(default=DATA_WIRE_SIZE, repr=False)

    @property
    def seq(self) -> Seq:
        """Sequence number of the repaired message."""
        return self.data.seq


class TreeMember:
    """A receiver in the tree-based baseline (possibly a repair server)."""

    def __init__(
        self,
        node_id: NodeId,
        sim: Simulator,
        network: Network,
        hierarchy: Hierarchy,
        trace: TraceLog,
        is_server: bool,
        repair_target: Optional[NodeId],
        timer_factor: float = 1.0,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.hierarchy = hierarchy
        self.trace = trace
        self.is_server = is_server
        #: Where this node sends NACKs: its region server for ordinary
        #: receivers, the parent region's server for servers (None for
        #: the root server, which is the sender itself).
        self.repair_target = repair_target
        self.timer_factor = timer_factor
        self.alive = True
        self.gap = GapTracker()
        self.buffer = MessageBuffer()
        #: Requesters waiting for messages this server hasn't got yet.
        self.waiting: Dict[Seq, Set[NodeId]] = {}
        self._nack_timers: Dict[Seq, Timer] = {}
        self._detect_times: Dict[Seq, float] = {}
        network.register(node_id, self)

    # ------------------------------------------------------------------
    # Network entry
    # ------------------------------------------------------------------
    def on_packet(self, packet: Packet) -> None:
        """Dispatch a delivered packet."""
        payload = packet.payload
        if isinstance(payload, DataMessage):
            self.handle_data(payload)
        elif isinstance(payload, TreeRepair):
            self.handle_data(payload.data)
        elif isinstance(payload, Nack):
            self._on_nack(payload)
        elif isinstance(payload, SessionMessage):
            self._detect_missing(self.gap.on_advertise(payload.max_seq))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown payload type {type(payload).__name__}")

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def handle_data(self, data: DataMessage) -> None:
        """Receive a message (original multicast or repair)."""
        seq = data.seq
        if self.gap.is_received(seq):
            return
        newly_missing = self.gap.on_receive(seq)
        self.trace.emit(self.sim.now, "member_received", node=self.node_id,
                        seq=seq, via="tree")
        detect_time = self._detect_times.pop(seq, None)
        timer = self._nack_timers.pop(seq, None)
        if timer is not None:
            timer.cancel()
        if detect_time is not None:
            self.trace.emit(self.sim.now, "recovery_completed", node=self.node_id,
                            seq=seq, latency=self.sim.now - detect_time,
                            local_rounds=0, remote_rounds=0, remote_requests=0)
        if self.is_server:
            # The defining behaviour: servers buffer everything, for
            # the whole session (§1's RMTP description).
            self.buffer.add(data, self.sim.now)
            self.trace.emit(self.sim.now, "buffer_add", node=self.node_id, seq=seq)
            for requester in sorted(self.waiting.pop(seq, set())):
                self._send_repair(requester, data)
        self._detect_missing(newly_missing)

    def _detect_missing(self, seqs: List[Seq]) -> None:
        for seq in seqs:
            if seq in self._detect_times:
                continue
            self._detect_times[seq] = self.sim.now
            self.trace.emit(self.sim.now, "loss_detected", node=self.node_id, seq=seq)
            self._send_nack(seq)

    def _send_nack(self, seq: Seq) -> None:
        if self.repair_target is None:
            # Root server (= sender): nobody upstream to ask.  In a real
            # deployment the sender always has its own data; reaching
            # this branch means the message was never sent.
            return
        self.network.unicast(self.node_id, self.repair_target,
                             Nack(seq=seq, requester=self.node_id))
        timer = self._nack_timers.get(seq)
        if timer is None:
            timer = Timer(self.sim, lambda s=seq: self._send_nack(s))
            self._nack_timers[seq] = timer
        timer.start(self.network.rtt(self.node_id, self.repair_target) * self.timer_factor)

    # ------------------------------------------------------------------
    # Server-side NACK handling
    # ------------------------------------------------------------------
    def _on_nack(self, nack: Nack) -> None:
        if not self.is_server:
            return
        data = self.buffer.data(nack.seq)
        if data is not None:
            self._send_repair(nack.requester, data)
        else:
            # Not here yet: queue the requester; our own NACK process
            # toward the parent server is already running (or will be,
            # once we detect the gap).
            self.waiting.setdefault(nack.seq, set()).add(nack.requester)
            self._detect_missing(self.gap.on_advertise(nack.seq))

    def _send_repair(self, requester: NodeId, data: DataMessage) -> None:
        self.network.unicast(self.node_id, requester,
                             TreeRepair(data=data, responder=self.node_id))
        self.trace.emit(self.sim.now, "repair_sent", node=self.node_id,
                        seq=data.seq, to=requester, scope="tree")

    # ------------------------------------------------------------------
    # Introspection (mirrors RrmpMember for the comparison harness)
    # ------------------------------------------------------------------
    @property
    def buffered_count(self) -> int:
        """Messages currently buffered (non-zero only at servers)."""
        return self.buffer.occupancy

    def has_received(self, seq: Seq) -> bool:
        """Whether this member has received *seq*."""
        return self.gap.is_received(seq)

    def is_buffering(self, seq: Seq) -> bool:
        """Whether *seq* sits in this member's buffer."""
        return seq in self.buffer


class TreeSimulation:
    """A fully-wired tree-based (RMTP-like) session for comparisons.

    Mirrors :class:`repro.protocol.rrmp.RrmpSimulation`'s query surface
    (``buffer_occupancy``, ``recovery_latencies``, …) so experiment code
    can treat the two protocols uniformly.
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        outcome: Optional[MulticastOutcome] = None,
        session_interval: Optional[float] = 50.0,
        timer_factor: float = 1.0,
    ) -> None:
        hierarchy.validate()
        self.hierarchy = hierarchy
        self.streams = RandomStreams(seed)
        self.sim = Simulator()
        self.trace = TraceLog()
        self.latency = latency if latency is not None else HierarchicalLatency(hierarchy)
        self.network = Network(self.sim, self.latency, loss=loss, streams=self.streams)
        self.outcome = outcome if outcome is not None else PerfectOutcome()
        self._outcome_rng = self.streams.stream("tree", "outcome")
        self.servers: Dict[RegionId, NodeId] = {}
        root_region = self._root_region()
        self.sender_node: NodeId = hierarchy.regions[root_region].members[0]
        for region_id in sorted(hierarchy.regions):
            members = hierarchy.regions[region_id].members
            if members:
                self.servers[region_id] = (
                    self.sender_node if region_id == root_region else members[0]
                )
        self.members: Dict[NodeId, TreeMember] = {}
        for node in hierarchy.nodes:
            region = hierarchy.region_of(node)
            server = self.servers[region.region_id]
            if node == server:
                parent = (hierarchy.regions[region.parent_id]
                          if region.parent_id is not None else None)
                target = self.servers[parent.region_id] if parent is not None else None
                is_server = True
            else:
                target, is_server = server, False
            self.members[node] = TreeMember(
                node_id=node, sim=self.sim, network=self.network,
                hierarchy=hierarchy, trace=self.trace,
                is_server=is_server, repair_target=target, timer_factor=timer_factor,
            )
        self.next_seq: Seq = 1
        self._session_task: Optional[PeriodicTask] = None
        if session_interval is not None:
            self._session_task = PeriodicTask(self.sim, session_interval, self._send_session)
            self._session_task.start()

    def _root_region(self) -> RegionId:
        for region_id in sorted(self.hierarchy.regions):
            region = self.hierarchy.regions[region_id]
            if region.parent_id is None and region.members:
                return region_id
        raise ValueError("hierarchy has no root region with members")

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def multicast(self, payload: object = None) -> DataMessage:
        """Multicast the next message through the outcome model."""
        data = DataMessage(seq=self.next_seq, sender=self.sender_node, payload=payload)
        self.next_seq += 1
        group = self.hierarchy.nodes
        holders = set(self.outcome.holders(data.seq, group, self._outcome_rng))
        holders.add(self.sender_node)
        self.members[self.sender_node].handle_data(data)
        targets = [n for n in group if n in holders and n != self.sender_node]
        self.network.multicast(self.sender_node, targets, data, group="session")
        return data

    def _send_session(self) -> None:
        if self.next_seq <= 1:
            return
        message = SessionMessage(sender=self.sender_node, max_seq=self.next_seq - 1)
        group = [n for n in self.hierarchy.nodes if n != self.sender_node]
        self.network.multicast(self.sender_node, group, message, group="session")

    # ------------------------------------------------------------------
    # Execution and queries (RrmpSimulation-compatible subset)
    # ------------------------------------------------------------------
    def run(self, duration: Optional[float] = None, until: Optional[float] = None) -> float:
        """Advance the simulation."""
        if duration is not None:
            return self.sim.run_for(duration)
        return self.sim.run(until=until)

    def stop_session(self) -> None:
        """Stop session heartbeats."""
        if self._session_task is not None:
            self._session_task.stop()

    def member(self, node_id: NodeId) -> TreeMember:
        """The member instance for *node_id*."""
        return self.members[node_id]

    def all_received(self, seq: Seq) -> bool:
        """Whether every member has received *seq*."""
        return all(m.has_received(seq) for m in self.members.values())

    def buffer_occupancy(self) -> int:
        """Total buffered messages (concentrated at servers)."""
        return sum(m.buffered_count for m in self.members.values())

    def occupancy_by_node(self) -> Dict[NodeId, int]:
        """Per-member occupancy; shows the repair-server hotspot."""
        return {node: m.buffered_count for node, m in self.members.items()}

    def recovery_latencies(self) -> List[float]:
        """Latencies (ms) of completed recoveries."""
        return [record["latency"] for record in self.trace.of_kind("recovery_completed")]

    def control_message_count(self) -> int:
        """Control-plane transmissions so far."""
        return self.network.stats.control_messages()

    def data_message_count(self) -> int:
        """Data-plane transmissions so far."""
        return self.network.stats.data_messages()
