"""Adaptive round-trip-time estimation.

The paper's timers are set "according to its estimated round trip time"
(§2.2, §3.3) — in a deployment nobody hands the protocol a latency
oracle.  :class:`RttEstimator` is the classic TCP-style estimator
(Jacobson/Karels): an EWMA of the smoothed RTT plus a variance term,

    srtt   <- (1 - a) * srtt + a * sample          (a = 1/8)
    rttvar <- (1 - b) * rttvar + b * |srtt - sample|  (b = 1/4)
    rto    =  srtt + 4 * rttvar

maintained per peer, seeded with a configurable prior for peers never
measured.  The member records a sample whenever a repair answers one of
its outstanding requests.

The default simulations keep using the latency model's exact RTT (the
paper's evaluation does the same — fixed 10 ms), but constructing a
member with ``use_rtt_estimator=True``... is not a member flag; instead
the experiment harness wires an estimator in through the
``rtt_provider`` hook so the adaptive path is exercised by tests and
available to users without changing the §4 reproduction defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.topology import NodeId


@dataclass
class _PeerEstimate:
    """Jacobson/Karels state for one peer."""

    srtt: float
    rttvar: float
    samples: int = 1


class RttEstimator:
    """Per-peer smoothed RTT with variance-based timeout inflation.

    Parameters
    ----------
    initial_rtt:
        Prior for peers with no samples yet (a deployment would use a
        configured regional default; the paper's intra-region value of
        10 ms is the natural choice).
    alpha, beta:
        EWMA gains for the smoothed RTT and its variance (classic
        values 1/8 and 1/4).
    k:
        Variance multiplier in the timeout (classic 4).
    min_timeout:
        Lower clamp so a string of fast samples cannot drive the
        timeout below one scheduling granule.
    """

    def __init__(
        self,
        initial_rtt: float = 10.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 4.0,
        min_timeout: float = 1.0,
    ) -> None:
        if initial_rtt <= 0:
            raise ValueError(f"initial_rtt must be > 0, got {initial_rtt!r}")
        if not 0 < alpha < 1 or not 0 < beta < 1:
            raise ValueError("alpha and beta must be in (0, 1)")
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k!r}")
        self.initial_rtt = initial_rtt
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.min_timeout = min_timeout
        self._peers: Dict[NodeId, _PeerEstimate] = {}

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def record_sample(self, peer: NodeId, rtt_sample: float) -> None:
        """Fold one measured round-trip into the peer's estimate."""
        if rtt_sample < 0:
            raise ValueError(f"rtt_sample must be >= 0, got {rtt_sample!r}")
        estimate = self._peers.get(peer)
        if estimate is None:
            # First sample: variance prior is half the sample (RFC 6298).
            self._peers[peer] = _PeerEstimate(srtt=rtt_sample, rttvar=rtt_sample / 2.0)
            return
        estimate.samples += 1
        deviation = abs(estimate.srtt - rtt_sample)
        estimate.rttvar = (1 - self.beta) * estimate.rttvar + self.beta * deviation
        estimate.srtt = (1 - self.alpha) * estimate.srtt + self.alpha * rtt_sample

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def rtt(self, peer: NodeId) -> float:
        """Best point estimate of the round-trip time to *peer*."""
        estimate = self._peers.get(peer)
        return estimate.srtt if estimate is not None else self.initial_rtt

    def timeout(self, peer: NodeId) -> float:
        """Retransmission timeout: ``srtt + k * rttvar`` (clamped)."""
        estimate = self._peers.get(peer)
        if estimate is None:
            value = self.initial_rtt
        else:
            value = estimate.srtt + self.k * estimate.rttvar
        return max(self.min_timeout, value)

    def sample_count(self, peer: NodeId) -> int:
        """How many samples have been folded in for *peer*."""
        estimate = self._peers.get(peer)
        return estimate.samples if estimate is not None else 0

    def known_peers(self) -> int:
        """Number of peers with at least one sample."""
        return len(self._peers)


class MeasuringRttProvider:
    """Adapter giving an :class:`RrmpMember`-compatible ``rtt_to`` that
    learns from the network instead of reading the latency oracle.

    Attach with :func:`attach_rtt_estimation`; it wraps the member's
    ``rtt_to`` and records a sample each time a repair for one of the
    member's own requests arrives (request send time is remembered per
    (peer, seq) pair — the single-outstanding-request-per-round pattern
    of the protocol makes this unambiguous).
    """

    def __init__(self, member, estimator: Optional[RttEstimator] = None) -> None:
        self.member = member
        self.estimator = estimator if estimator is not None else RttEstimator()
        self._outstanding: Dict[tuple, float] = {}
        self._wrap()

    def _wrap(self) -> None:
        member = self.member
        original_send_local = member.send_local_request
        original_send_remote = member.send_remote_request
        original_on_repair = member._on_repair
        original_handle_data = member._handle_data

        def register(dst, seq):
            key = (dst, seq)
            if key in self._outstanding:
                # Karn's algorithm: a re-sent request to the same peer
                # makes any eventual reply ambiguous (it may answer
                # either transmission) — take no sample from it.
                self._outstanding[key] = None
            else:
                self._outstanding[key] = member.sim.now

        def send_local(dst, request):
            register(dst, request.seq)
            original_send_local(dst, request)

        def send_remote(dst, request):
            register(dst, request.seq)
            original_send_remote(dst, request)

        def on_repair(repair):
            # Only the peer that actually answered yields a sample — a
            # request may race with repairs from elsewhere, and peers
            # that ignored us (they lacked the message) must not be
            # charged the full wait as if it were their round trip.
            sent_at = self._outstanding.get((repair.responder, repair.seq))
            if sent_at is not None:
                self.estimator.record_sample(repair.responder, member.sim.now - sent_at)
            original_on_repair(repair)

        def handle_data(data, via):
            # However the message arrived, its requests are now moot.
            for key in [k for k in self._outstanding if k[1] == data.seq]:
                del self._outstanding[key]
            original_handle_data(data, via)

        member.send_local_request = send_local      # type: ignore[method-assign]
        member.send_remote_request = send_remote    # type: ignore[method-assign]
        member._on_repair = on_repair               # type: ignore[method-assign]
        member._handle_data = handle_data           # type: ignore[method-assign]
        member.rtt_to = self.estimator.timeout      # type: ignore[method-assign]


def attach_rtt_estimation(member, initial_rtt: float = 10.0) -> MeasuringRttProvider:
    """Make *member* drive its retry timers from measured RTTs.

    Returns the provider so tests can inspect the estimator.
    """
    return MeasuringRttProvider(member, RttEstimator(initial_rtt=initial_rtt))
