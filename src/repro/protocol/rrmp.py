"""High-level facade: build and run a complete RRMP simulation.

:class:`RrmpSimulation` assembles the engine, network, members and
sender for a given hierarchy, wiring every component to one master
seed.  It is the main entry point of the public API::

    from repro import RrmpSimulation, single_region, FixedHolderCount

    sim = RrmpSimulation(single_region(100), seed=42,
                         outcome=FixedHolderCount(10))
    sim.sender.multicast()
    sim.run(duration=500.0)
    assert sim.all_received(1)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.policies import BufferPolicy
from repro.core.manager import TwoPhaseBufferPolicy
from repro.net.ipmulticast import MulticastOutcome
from repro.net.latency import HierarchicalLatency, LatencyModel
from repro.net.loss import LossModel
from repro.net.topology import Hierarchy, NodeId
from repro.net.transport import Network
from repro.protocol.config import RrmpConfig
from repro.protocol.member import RrmpMember
from repro.protocol.messages import Seq
from repro.protocol.sender import RrmpSender
from repro.sim import RandomStreams, Simulator, TraceLog

#: Builds a buffer policy for a given node; lets experiments swap the
#: paper's two-phase policy for any baseline.
PolicyFactory = Callable[[NodeId], BufferPolicy]


def two_phase_policy_factory(config: RrmpConfig) -> PolicyFactory:
    """Policy factory for the paper's two-phase algorithm (§3)."""

    def build(_node_id: NodeId) -> BufferPolicy:
        return TwoPhaseBufferPolicy(
            idle_threshold=config.idle_threshold,
            long_term_c=config.long_term_c,
            long_term_ttl=config.long_term_ttl,
        )

    return build


def default_sender_node(hierarchy: Hierarchy) -> NodeId:
    """The conventional sender: first member of the first root region.

    Shared by the simulated facade and the live runtime so one spec
    elects the same sender in both worlds.
    """
    for region_id in sorted(hierarchy.regions):
        region = hierarchy.regions[region_id]
        if region.parent_id is None and region.members:
            return region.members[0]
    raise ValueError("hierarchy has no root region with members")


class MemberGroup:
    """Query surface shared by every fully-wired RRMP group.

    Mixed into :class:`RrmpSimulation` (members over the simulated
    network) and :class:`repro.live.session.LiveSession` (members over
    asyncio UDP).  Implementations provide ``members`` (dict of
    :class:`~repro.protocol.member.RrmpMember`), ``trace`` (a
    :class:`~repro.sim.TraceLog`) and ``network`` (anything with a
    ``stats`` :class:`~repro.net.transport.NetworkStats`); everything
    here derives from those, which is what lets experiment code and the
    invariant oracle treat a live group exactly like a simulated one.
    """

    members: Dict[NodeId, RrmpMember]

    def member(self, node_id: NodeId) -> RrmpMember:
        """The member instance for *node_id*."""
        return self.members[node_id]

    def alive_members(self) -> List[RrmpMember]:
        """Members that have not left or crashed."""
        return [member for member in self.members.values() if member.alive]

    def received_count(self, seq: Seq) -> int:
        """How many alive members have received message *seq*."""
        return sum(1 for m in self.alive_members() if m.has_received(seq))

    def buffering_count(self, seq: Seq) -> int:
        """How many alive members currently buffer message *seq*."""
        return sum(1 for m in self.alive_members() if m.is_buffering(seq))

    def all_received(self, seq: Seq) -> bool:
        """Whether every alive member has received *seq*."""
        return all(m.has_received(seq) for m in self.alive_members())

    def delivered_fraction(self, message_count: int) -> float:
        """Fraction of (alive member, message 1..*message_count*) pairs
        delivered so far; 1.0 when there is nothing to deliver."""
        members = self.alive_members()
        if not members or message_count == 0:
            return 1.0
        delivered = sum(
            1
            for member in members
            for seq in range(1, message_count + 1)
            if member.has_received(seq)
        )
        return delivered / (len(members) * message_count)

    def buffer_occupancy(self) -> int:
        """Total buffered messages across all alive members."""
        return sum(m.buffered_count for m in self.alive_members())

    def occupancy_by_node(self) -> Dict[NodeId, int]:
        """Current per-member buffer occupancy."""
        return {m.node_id: m.buffered_count for m in self.alive_members()}

    # ------------------------------------------------------------------
    # Trace-derived statistics
    # ------------------------------------------------------------------
    def recovery_latencies(self) -> List[float]:
        """Latencies (ms) of all completed recoveries."""
        return [record["latency"] for record in self.trace.of_kind("recovery_completed")]

    def violation_count(self) -> int:
        """Recoveries that gave up (reliability violations, §5)."""
        return self.trace.count("reliability_violation")

    def control_message_count(self) -> int:
        """Control-plane transmissions so far (traffic overhead)."""
        return self.network.stats.control_messages()

    def data_message_count(self) -> int:
        """Data-plane transmissions so far."""
        return self.network.stats.data_messages()


class RrmpSimulation(MemberGroup):
    """A fully-wired RRMP group over a simulated network.

    Parameters
    ----------
    hierarchy:
        Regions and parent links (see :mod:`repro.net.topology`
        builders).  The simulation registers one member per node.
    config:
        Protocol parameters; defaults to :class:`RrmpConfig` defaults.
    seed:
        Master seed; every random decision derives from it.
    latency:
        Latency model; defaults to :class:`HierarchicalLatency` with
        the paper's 5 ms intra-region one-way delay.
    loss:
        Optional transport loss model (default: lossless, the paper's
        §4 assumption for requests and repairs).
    outcome:
        IP-multicast outcome model for the sender (default: perfect).
    policy_factory:
        Buffer-policy builder per node (default: the two-phase policy
        configured from *config*).
    sender_node:
        Which member is the sender; defaults to the first member of a
        root region (a region with no parent).
    keep_trace:
        Retain trace records in memory (on for experiments; turn off
        for long soak runs).
    """

    def __init__(
        self,
        hierarchy: Hierarchy,
        config: Optional[RrmpConfig] = None,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        outcome: Optional[MulticastOutcome] = None,
        policy_factory: Optional[PolicyFactory] = None,
        sender_node: Optional[NodeId] = None,
        keep_trace: bool = True,
    ) -> None:
        hierarchy.validate()
        self.hierarchy = hierarchy
        self.config = config if config is not None else RrmpConfig()
        self.streams = RandomStreams(seed)
        self.sim = Simulator()
        self.trace = TraceLog(keep_records=keep_trace)
        self.latency = latency if latency is not None else HierarchicalLatency(hierarchy)
        self.network = Network(
            self.sim, self.latency, loss=loss, streams=self.streams, trace=None
        )
        if policy_factory is None:
            policy_factory = two_phase_policy_factory(self.config)
        self.members: Dict[NodeId, RrmpMember] = {}
        for node in hierarchy.nodes:
            self.members[node] = RrmpMember(
                node_id=node,
                sim=self.sim,
                network=self.network,
                hierarchy=hierarchy,
                config=self.config,
                streams=self.streams,
                trace=self.trace,
                policy=policy_factory(node),
            )
        self._policy_factory = policy_factory
        if sender_node is None:
            sender_node = self._default_sender_node()
        self.sender = RrmpSender(self.members[sender_node], outcome=outcome)

    def add_member(self, region_id: int) -> RrmpMember:
        """A new receiver joins *region_id* mid-session (IP-multicast
        group model: no coordination with existing members, §1)."""
        node = self.hierarchy.add_member(region_id)
        member = RrmpMember(
            node_id=node,
            sim=self.sim,
            network=self.network,
            hierarchy=self.hierarchy,
            config=self.config,
            streams=self.streams,
            trace=self.trace,
            policy=self._policy_factory(node),
        )
        self.members[node] = member
        self.trace.emit(self.sim.now, "member_joined", node=node, region=region_id)
        return member

    def _default_sender_node(self) -> NodeId:
        return default_sender_node(self.hierarchy)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, duration: Optional[float] = None, until: Optional[float] = None) -> float:
        """Advance the simulation; returns the new simulated time."""
        if duration is not None:
            return self.sim.run_for(duration)
        return self.sim.run(until=until)

    def drain(self, max_events: int = 10_000_000) -> float:
        """Run until no events remain (sessions stopped first if needed)."""
        self.sender.stop()
        return self.sim.drain(max_events=max_events)

    # Group-level queries (member, alive_members, delivered_fraction,
    # occupancy, trace statistics, ...) are inherited from MemberGroup,
    # shared with the live UDP runtime.
