"""The RRMP receiver state machine.

:class:`RrmpMember` ties every piece of the reproduction together: it
receives packets from the network, detects losses (§2.1), runs local
and remote recovery (§2.2), feeds its buffer policy (§3.1–3.2), relays
repairs for downstream waiters, re-multicasts remote repairs in its
region, answers searches for bufferers (§3.3) and hands its long-term
buffer off when it leaves (§3.2).

The member implements three narrow host protocols —
:class:`repro.core.policies.BufferHost`,
:class:`repro.core.search.SearchHost` and
:class:`repro.protocol.recovery.RecoveryHost` — so the policy, search
and recovery engines stay independently testable.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional, Sequence, Set

from repro.core.handoff import plan_handoff
from repro.core.manager import TwoPhaseBufferPolicy
from repro.core.policies import BufferPolicy
from repro.core.search import SearchCoordinator
from repro.fec.decoder import FecBlockDecoder
from repro.net.topology import Hierarchy, NodeId
from repro.net.transport import Network, Packet
from repro.protocol.config import FEC_OFF, RrmpConfig
from repro.protocol.loss_detection import GapTracker
from repro.protocol.messages import (
    REPAIR_LOCAL,
    REPAIR_REGIONAL,
    REPAIR_RELAY,
    REPAIR_REMOTE,
    DataMessage,
    HandoffMessage,
    HaveReply,
    LocalRequest,
    ParityMessage,
    RemoteRequest,
    Repair,
    SearchRequest,
    Seq,
    SessionMessage,
)
from repro.protocol.recovery import RecoveryProcess
from repro.sim import Event, RandomStreams, Simulator, TraceLog

#: ``via`` values for message arrival paths (trace field and behaviour
#: switch: only remote arrivals trigger a regional re-multicast).
VIA_MULTICAST = "multicast"
VIA_LOCAL_REPAIR = "local-repair"
VIA_REMOTE_REPAIR = "remote-repair"
VIA_REGIONAL = "regional"
VIA_HANDOFF = "handoff"
VIA_INJECTED = "injected"
VIA_FEC = "fec-decode"


class RrmpMember:
    """One receiver (the sender is also a member, §2.1)."""

    def __init__(
        self,
        node_id: NodeId,
        sim: Simulator,
        network: Network,
        hierarchy: Hierarchy,
        config: RrmpConfig,
        streams: RandomStreams,
        trace: TraceLog,
        policy: Optional[BufferPolicy] = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.hierarchy = hierarchy
        self.config = config
        self.streams = streams
        self.trace = trace
        self.alive = True

        self.policy: BufferPolicy = policy if policy is not None else TwoPhaseBufferPolicy(
            idle_threshold=config.idle_threshold,
            long_term_c=config.long_term_c,
            long_term_ttl=config.long_term_ttl,
        )
        self.policy.bind(self)
        self.search = SearchCoordinator(
            self, timer_factor=config.timer_factor, max_rounds=config.max_search_rounds
        )
        self.gap = GapTracker()
        self.recoveries: Dict[Seq, RecoveryProcess] = {}
        #: FEC block decoder (None when the subsystem is off): fills
        #: sequence gaps from parity before pull recovery has to run.
        self.fec: Optional[FecBlockDecoder] = (
            FecBlockDecoder() if config.fec_mode != FEC_OFF else None
        )
        #: Parity messages already processed (dedup, kept apart from
        #: the gap tracker whose seq space is data-only).
        self._parity_seen: Set[Seq] = set()
        #: Reactive-FEC hook: the sender installs this on its own
        #: member so observed retransmission requests can trigger
        #: on-demand parity for the affected block.
        self.repair_interest_hook: Optional[Callable[[Seq], None]] = None
        #: Downstream (child-region) members waiting for messages this
        #: member has not received yet (§2.2's relay rule).
        self.waiting_remote: Dict[Seq, Set[NodeId]] = {}
        #: Pending (backed-off) regional re-multicasts, for suppression.
        self._pending_regional: Dict[Seq, Event] = {}
        #: Extension point: payload type -> handler, used by companion
        #: agents (stability detection, failure detection) that share
        #: this member's network endpoint.
        self.extra_handlers: Dict[type, Callable[[object], None]] = {}
        #: §3.3 "this reply notifies other members that the search
        #: process is over": after a HaveReply we remember who owns the
        #: message, so search requests still in flight are redirected
        #: to the announced owner instead of re-seeding the search.
        self._search_owner_hint: Dict[Seq, NodeId] = {}
        #: Time of this member's last HaveReply per message.  One
        #: announcement stops the current search wave; straggler
        #: requests inside the suppression window are served without
        #: re-multicasting, while genuinely later searches (e.g. after
        #: a long-term TTL reshuffle) get a fresh announcement.
        self._announced_at: Dict[Seq, float] = {}

        network.register(node_id, self)

    # ==================================================================
    # Host-protocol surface (BufferHost / SearchHost / RecoveryHost)
    # ==================================================================
    def region_size(self) -> int:
        """Current size of this member's region."""
        return self.hierarchy.region_of(self.node_id).size

    def region_member_ids(self) -> Sequence[NodeId]:
        """Members of this member's region, including itself."""
        return list(self.hierarchy.region_of(self.node_id).members)

    def neighbor_ids(self) -> Sequence[NodeId]:
        """Other members of this member's region."""
        return self.hierarchy.neighbors(self.node_id)

    def parent_member_ids(self) -> Sequence[NodeId]:
        """Members of the parent region (empty for the root region)."""
        return self.hierarchy.parent_members(self.node_id)

    def has_parent_region(self) -> bool:
        """Whether this member's region has a parent (possibly empty)."""
        return self.hierarchy.region_of(self.node_id).parent_id is not None

    def rtt_to(self, dst: NodeId) -> float:
        """Round-trip estimate used for retry timers."""
        return self.network.rtt(self.node_id, dst)

    def policy_rng(self, purpose: str) -> random.Random:
        """Deterministic RNG substream for the buffer policy."""
        return self.streams.stream("member", self.node_id, "policy", purpose)

    def search_rng(self) -> random.Random:
        """Deterministic RNG substream for bufferer search."""
        return self.streams.stream("member", self.node_id, "search")

    def recovery_rng(self) -> random.Random:
        """Deterministic RNG substream for recovery target selection."""
        return self.streams.stream("member", self.node_id, "recovery")

    def send_search_request(self, dst: NodeId, request: SearchRequest) -> None:
        """Forward a search hop (SearchHost)."""
        self.network.unicast(self.node_id, dst, request)

    def send_local_request(self, dst: NodeId, request: LocalRequest) -> None:
        """Transmit a local retransmission request (RecoveryHost)."""
        self.network.unicast(self.node_id, dst, request)

    def send_remote_request(self, dst: NodeId, request: RemoteRequest) -> None:
        """Transmit a remote retransmission request (RecoveryHost)."""
        self.network.unicast(self.node_id, dst, request)

    # ==================================================================
    # Network entry point
    # ==================================================================
    #: Payload type → handler method name.  Exact-type dispatch
    #: replaces the former isinstance chain on the hottest protocol
    #: path; every payload is a final (frozen dataclass) type, so exact
    #: matching is equivalent — and one dict lookup instead of up to
    #: nine isinstance calls.  The indirection through ``getattr``
    #: (rather than storing unbound methods) keeps instance-level
    #: wrappers working, e.g. ``attach_rtt_estimation`` replacing
    #: ``member._on_repair``.  Populated after the class body.
    _DISPATCH: Dict[type, str] = {}

    def on_packet(self, packet: Packet) -> None:
        """Dispatch a delivered packet to the protocol handlers."""
        if not self.alive:
            return
        payload = packet.payload
        name = self._DISPATCH.get(type(payload))
        if name is not None:
            getattr(self, name)(payload)
            return
        extra = self.extra_handlers.get(type(payload))
        if extra is None:  # pragma: no cover - defensive
            raise TypeError(f"unknown payload type {type(payload).__name__}")
        extra(payload)

    def _on_multicast_data(self, data: DataMessage) -> None:
        self._handle_data(data, VIA_MULTICAST)

    def _on_have_reply(self, reply: HaveReply) -> None:
        self._search_owner_hint[reply.seq] = reply.owner
        self.search.on_have_reply(reply.seq)

    # ==================================================================
    # Data-path handling
    # ==================================================================
    def _on_repair(self, repair: Repair) -> None:
        if isinstance(repair.data, ParityMessage):
            # A buffered parity shard served back to a requester: it
            # feeds the decoder, never the gap tracker.
            self._on_parity(repair.data)
            return
        if repair.scope == REPAIR_LOCAL:
            self._handle_data(repair.data, VIA_LOCAL_REPAIR)
        elif repair.scope in (REPAIR_REMOTE, REPAIR_RELAY):
            self._handle_data(repair.data, VIA_REMOTE_REPAIR)
        elif repair.scope == REPAIR_REGIONAL:
            self._handle_data(repair.data, VIA_REGIONAL)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown repair scope {repair.scope!r}")

    def _handle_data(self, data: DataMessage, via: str) -> None:
        seq = data.seq
        trace = self.trace
        # Duplicate-suppression for our own pending regional multicast:
        # if a neighbour already re-multicast this repair, drop ours.
        if via == VIA_REGIONAL:
            pending = self._pending_regional.pop(seq, None)
            if pending is not None:
                pending.cancel()
                if trace.enabled:
                    trace.emit(self.sim.now, "regional_multicast_suppressed",
                               node=self.node_id, seq=seq)
        if self.gap.is_received(seq):
            # §2.2: a duplicate remote repair is *not* re-multicast.
            if trace.enabled:
                trace.emit(self.sim.now, "duplicate_received",
                           node=self.node_id, seq=seq, via=via)
            return
        newly_missing = self.gap.on_receive(seq)
        if trace.enabled:
            trace.emit(self.sim.now, "member_received",
                       node=self.node_id, seq=seq, via=via)
        recovery = self.recoveries.pop(seq, None)
        if recovery is not None:
            recovery.complete(self.sim.now)
        self.policy.on_receive(data)
        self._serve_waiters(data)
        if self.fec is not None:
            # Eager decode: this arrival may give the block its k-th
            # shard, filling this member's other gaps in the block
            # before their recoveries spend another round.
            self._absorb_fec_recoveries(self.fec.on_data(data))
        for missing in newly_missing:
            self._start_recovery(missing)
        if via == VIA_REMOTE_REPAIR:
            # §2.2: a repair received from a remote member is multicast
            # in the local region so neighbours sharing the loss get it.
            self._schedule_regional_multicast(data)

    # ==================================================================
    # FEC repair path
    # ==================================================================
    def _on_parity(self, parity: ParityMessage) -> None:
        """Absorb one parity message (multicast, repair or handoff).

        Parity flows through the regular buffer policy — its reserved
        negative seq keys a normal entry, so the idle threshold,
        long-term promotion and handoff all apply and a long-term
        bufferer can serve parity exactly like data.
        """
        seq = parity.seq
        if seq in self._parity_seen:
            self.trace.emit(self.sim.now, "duplicate_received",
                            node=self.node_id, seq=seq, via="parity")
            return
        self._parity_seen.add(seq)
        self.trace.emit(self.sim.now, "fec_parity_received", node=self.node_id,
                        seq=seq, block=parity.block_id, index=parity.index)
        self.policy.on_receive(parity)
        if self.fec is not None:
            self._absorb_fec_recoveries(self.fec.on_parity(parity))

    def _absorb_fec_recoveries(self, recovered: Sequence[DataMessage]) -> None:
        """Treat decoder-reconstructed messages as regular arrivals.

        Going through :meth:`_handle_data` completes (and thereby
        cancels the timers of) any in-flight recovery for the decoded
        seq, buffers the reconstruction, and serves recorded waiters.
        """
        for data in recovered:
            self.trace.emit(self.sim.now, "fec_decode_recovered",
                            node=self.node_id, seq=data.seq)
            self._handle_data(data, VIA_FEC)

    def _serve_waiters(self, data: DataMessage) -> None:
        """Serve downstream waiters and resolve any active search."""
        seq = data.seq
        enabled = self.trace.enabled
        for waiter in sorted(self.waiting_remote.pop(seq, set())):
            self.network.unicast(
                self.node_id, waiter,
                Repair(data=data, responder=self.node_id, scope=REPAIR_RELAY),
            )
            self.policy.on_serve(seq)
            if enabled:
                self.trace.emit(self.sim.now, "remote_request_served",
                                node=self.node_id, seq=seq, requester=waiter, via="relay")
        for waiter in self.search.resolve(seq):
            self.network.unicast(
                self.node_id, waiter,
                Repair(data=data, responder=self.node_id, scope=REPAIR_REMOTE),
            )
            if enabled:
                self.trace.emit(self.sim.now, "remote_request_served",
                                node=self.node_id, seq=seq, requester=waiter, via="receipt")

    def _schedule_regional_multicast(self, data: DataMessage) -> None:
        backoff_max = self.config.regional_backoff_max
        if backoff_max:
            # Randomized back-off: wait, and suppress if a neighbour's
            # regional multicast of the same message arrives first.
            delay = self.policy_rng("regional-backoff").uniform(0.0, backoff_max)
            event = self.sim.after(delay, self._do_regional_multicast, data)
            self._pending_regional[data.seq] = event
        else:
            self._do_regional_multicast(data)

    def _do_regional_multicast(self, data: DataMessage) -> None:
        self._pending_regional.pop(data.seq, None)
        repair = Repair(data=data, responder=self.node_id, scope=REPAIR_REGIONAL)
        self.network.multicast(self.node_id, self.neighbor_ids(), repair, group="region")
        self.trace.emit(self.sim.now, "regional_multicast", node=self.node_id, seq=data.seq)

    # ==================================================================
    # Request handling
    # ==================================================================
    def _on_local_request(self, request: LocalRequest) -> None:
        if self.repair_interest_hook is not None:
            self.repair_interest_hook(request.seq)
        # Feedback first (§3.1): every request, answerable or not,
        # refreshes the idle state of a buffered copy.
        self.policy.on_request(request.seq)
        data = self.policy.get(request.seq)
        if data is None:
            # §2.2: "Otherwise it ignores the request."
            return
        self.network.unicast(
            self.node_id, request.requester,
            Repair(data=data, responder=self.node_id, scope=REPAIR_LOCAL),
        )
        self.policy.on_serve(request.seq)
        if self.trace.enabled:
            self.trace.emit(self.sim.now, "repair_sent", node=self.node_id,
                            seq=request.seq, to=request.requester, scope=REPAIR_LOCAL)

    def _on_remote_request(self, request: RemoteRequest) -> None:
        seq, requester = request.seq, request.requester
        if self.repair_interest_hook is not None:
            self.repair_interest_hook(seq)
        self.trace.emit(self.sim.now, "remote_request_received",
                        node=self.node_id, seq=seq, requester=requester)
        if self.config.refresh_on_remote_request:
            self.policy.on_request(seq)
        data = self.policy.get(seq)
        if data is not None:
            # Case 1 (§3.3): still buffered — answer immediately.
            self.network.unicast(
                self.node_id, requester,
                Repair(data=data, responder=self.node_id, scope=REPAIR_REMOTE),
            )
            self.policy.on_serve(seq)
            self.trace.emit(self.sim.now, "remote_request_served",
                            node=self.node_id, seq=seq, requester=requester, via="buffer")
        elif not self.gap.is_received(seq):
            # Case 2: never received — record the waiter and relay on
            # receipt (§2.2); the request also reveals the message
            # exists, so it doubles as loss detection.
            self.waiting_remote.setdefault(seq, set()).add(requester)
            self.trace.emit(self.sim.now, "remote_request_recorded",
                            node=self.node_id, seq=seq, requester=requester)
            for missing in self.gap.on_advertise(seq):
                self._start_recovery(missing)
        else:
            # Case 3: received but discarded.  A deterministic policy
            # (hash-based, §3.4) can compute the bufferer set directly;
            # otherwise run the randomized search of §3.3.
            self._find_bufferer(seq, (requester,))

    #: Maximum consecutive owner-hint redirects before falling back to
    #: the randomized search (breaks cycles of stale hints).
    _MAX_REDIRECT_HOPS = 8

    def _find_bufferer(self, seq: Seq, waiters: Sequence[NodeId], hops: int = 0) -> None:
        """Route a request for a discarded message toward a bufferer."""
        hint = self._search_owner_hint.get(seq)
        if hint is not None and hint != self.node_id and hops < self._MAX_REDIRECT_HOPS:
            # A HaveReply already named the owner: one targeted hop
            # instead of (re)starting the search.
            self.trace.emit(self.sim.now, "search_redirected",
                            node=self.node_id, seq=seq, target=hint)
            self.send_search_request(
                hint, SearchRequest(seq=seq, waiters=tuple(sorted(waiters)),
                                    forwarder=self.node_id, hops=hops + 1)
            )
            return
        if hint is not None and hops >= self._MAX_REDIRECT_HOPS:
            # The hint chain went nowhere — the announced owner must
            # have discarded the message since.  Forget it and search.
            self._search_owner_hint.pop(seq, None)
        locate = getattr(self.policy, "locate_bufferers", None)
        if locate is not None:
            self._forward_via_lookup(seq, waiters, locate)
        else:
            self.search.begin(seq, waiters)

    def _forward_via_lookup(self, seq: Seq, waiters: Sequence[NodeId], locate) -> None:
        """§3.4 deterministic alternative to searching: hash every known
        address, forward the request straight to a computed bufferer."""
        candidates = [
            node for node in locate(seq, self.region_member_ids())
            if node != self.node_id
        ]
        if not candidates:
            # Hash selected nobody (probability ≈ e^{-C}) or only us —
            # fall back to the randomized search.
            self.search.begin(seq, waiters)
            return
        target = candidates[0]
        self.trace.emit(self.sim.now, "lookup_forwarded",
                        node=self.node_id, seq=seq, target=target)
        self.send_search_request(
            target, SearchRequest(seq=seq, waiters=tuple(sorted(waiters)),
                                  forwarder=self.node_id)
        )

    def _on_search_request(self, request: SearchRequest) -> None:
        seq, waiters = request.seq, request.waiters
        if self.config.refresh_on_search_request:
            self.policy.on_request(seq)
        data = self.policy.get(seq)
        if data is not None:
            # Found: serve every waiter and announce, ending the search.
            for waiter in waiters:
                self.network.unicast(
                    self.node_id, waiter,
                    Repair(data=data, responder=self.node_id, scope=REPAIR_REMOTE),
                )
                self.policy.on_serve(seq)
                self.trace.emit(self.sim.now, "remote_request_served",
                                node=self.node_id, seq=seq, requester=waiter, via="search")
            self.search.on_have_reply(seq)  # stop our own search, if any
            last = self._announced_at.get(seq)
            if last is None or self.sim.now - last >= self.config.idle_threshold:
                self._announced_at[seq] = self.sim.now
                self.network.multicast(
                    self.node_id, self.neighbor_ids(),
                    HaveReply(seq=seq, owner=self.node_id), group="region",
                )
            self.trace.emit(self.sim.now, "search_served",
                            node=self.node_id, seq=seq, waiters=tuple(waiters))
        elif not self.gap.is_received(seq):
            # Footnote 4: a searcher that never received the message
            # records the waiters and recovers the loss itself.
            for waiter in waiters:
                self.waiting_remote.setdefault(seq, set()).add(waiter)
            for missing in self.gap.on_advertise(seq):
                self._start_recovery(missing)
        else:
            # Received-but-discarded: join the search (or redirect if a
            # HaveReply already identified the owner).
            self._find_bufferer(seq, waiters, hops=request.hops)

    def _on_session(self, message: SessionMessage) -> None:
        for missing in self.gap.on_advertise(message.max_seq):
            self._start_recovery(missing)

    def _on_handoff(self, message: HandoffMessage) -> None:
        self.trace.emit(self.sim.now, "handoff_received", node=self.node_id,
                        seq=message.seq, from_member=message.from_member)
        if isinstance(message.data, ParityMessage):
            # Long-term parity transfers like data: absorb it (decoder
            # + short-term buffer), then promote to long-term since the
            # leaver's responsibility moves to us.
            self._on_parity(message.data)
            accept = getattr(self.policy, "accept_handoff", None)
            if accept is not None:
                accept(message.data)
            return
        if not self.gap.is_received(message.seq):
            # The handoff doubles as first receipt of the message.
            self._handle_data(message.data, VIA_HANDOFF)
        accept = getattr(self.policy, "accept_handoff", None)
        if accept is not None:
            accept(message.data)
        else:
            self.policy.on_receive(message.data)

    # ==================================================================
    # Recovery management
    # ==================================================================
    def _start_recovery(self, seq: Seq) -> None:
        if seq in self.recoveries or self.gap.is_received(seq):
            return
        if self.fec is not None:
            # Consult the decoder first: if enough of the block's
            # shards are already here, fill the gap locally and skip
            # the pull recovery entirely.
            self._absorb_fec_recoveries(self.fec.recover(seq))
            if self.gap.is_received(seq):
                return
        if self.trace.enabled:
            self.trace.emit(self.sim.now, "loss_detected", node=self.node_id, seq=seq)
        process = RecoveryProcess(self, seq, detected_at=self.sim.now)
        self.recoveries[seq] = process
        process.start()

    # ==================================================================
    # Experiment / scenario API
    # ==================================================================
    def inject_receive(self, data: DataMessage, via: str = VIA_INJECTED) -> None:
        """Deliver *data* to this member directly (no network hop).

        Used by workload generators to set an initial IP-multicast
        outcome, and by the sender for its own messages.
        """
        self._handle_data(data, via)

    def inject_parity(self, parity: ParityMessage) -> None:
        """Deliver *parity* to this member directly (no network hop).

        Used by the sender for its own parity messages, mirroring
        :meth:`inject_receive` for data.
        """
        self._on_parity(parity)

    def inject_loss_detection(self, seq: Seq) -> None:
        """Make the member detect that *seq* (and everything below) is missing.

        Figure 6/7 setup: "All other members simultaneously detect the
        loss and start sending local requests."
        """
        for missing in self.gap.on_advertise(seq):
            self._start_recovery(missing)

    def force_received(self, data: DataMessage) -> None:
        """Mark *data* as received in the past, without buffering it.

        Scenario helper for the "received but has discarded" state that
        Figures 8/9 start from.
        """
        self.gap.on_receive(data.seq)

    def install_long_term(self, data: DataMessage) -> None:
        """Make this member a long-term bufferer of *data* (Figure 8/9 setup)."""
        self.gap.on_receive(data.seq)
        accept = getattr(self.policy, "accept_handoff", None)
        if accept is not None:
            accept(data)
        else:
            self.policy.on_receive(data)

    # ==================================================================
    # Membership changes
    # ==================================================================
    def leave(self) -> None:
        """Graceful leave: hand long-term buffers to random peers (§3.2)."""
        if not self.alive:
            return
        messages = self.policy.drain_for_handoff()
        plan = plan_handoff(
            self.node_id, messages, self.region_member_ids(), self.policy_rng("handoff")
        )
        for target, handoff in plan:
            self.network.unicast(self.node_id, target, handoff)
            self.trace.emit(self.sim.now, "handoff_sent", node=self.node_id,
                            to=target, seq=handoff.seq)
        orphaned = len(messages) - len(plan)
        if orphaned > 0:
            # Last member of the region: its long-term entries die with it.
            self.trace.emit(self.sim.now, "handoff_orphaned",
                            node=self.node_id, count=orphaned)
        self._shutdown()
        self.trace.emit(self.sim.now, "member_left", node=self.node_id)

    def crash(self) -> None:
        """Fail-stop without handoff: long-term entries are simply lost."""
        if not self.alive:
            return
        self._shutdown()
        self.trace.emit(self.sim.now, "member_crashed", node=self.node_id)

    def _shutdown(self) -> None:
        self.alive = False
        for process in self.recoveries.values():
            process.cancel()
        self.recoveries.clear()
        self.search.close()
        for event in self._pending_regional.values():
            event.cancel()
        self._pending_regional.clear()
        self.policy.close()
        self.network.unregister(self.node_id)
        if self.hierarchy.contains(self.node_id):
            self.hierarchy.remove_member(self.node_id)

    # ==================================================================
    # Introspection
    # ==================================================================
    @property
    def buffered_count(self) -> int:
        """Messages currently buffered at this member."""
        return self.policy.occupancy

    def buffered_seqs(self) -> Sequence[Seq]:
        """Sequence numbers currently in this member's buffer.

        Oracle hook (:mod:`repro.validate`): lets the end-of-run sweep
        cross-check the trace's add/discard ledger against live state.
        """
        return tuple(self.policy.buffer.seqs())

    def active_recovery_seqs(self) -> Sequence[Seq]:
        """Seqs with a recovery still running (not completed/failed/cancelled).

        Oracle hook: at quiescence an active recovery with no pending
        timer event is a stalled recovery — the liveness bug class the
        invariant oracle exists to catch.
        """
        return tuple(
            seq for seq, process in self.recoveries.items() if process.active
        )

    def unresolved_gaps(self) -> Sequence[Seq]:
        """Detected-but-unreceived seqs at this member, in order.

        Oracle hook: at quiescence every entry must be covered by an
        explicit ``reliability_violation`` trace record.
        """
        return tuple(self.gap.missing())

    def has_received(self, seq: Seq) -> bool:
        """Whether *seq* has ever been received by this member."""
        return self.gap.is_received(seq)

    def is_buffering(self, seq: Seq) -> bool:
        """Whether *seq* is currently in this member's buffer."""
        return self.policy.has(seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RrmpMember(id={self.node_id}, region={self.hierarchy.region_id_of(self.node_id)}, "
            f"received={self.gap.received_count}, buffered={self.buffered_count})"
        )


RrmpMember._DISPATCH = {
    DataMessage: "_on_multicast_data",
    ParityMessage: "_on_parity",
    Repair: "_on_repair",
    LocalRequest: "_on_local_request",
    RemoteRequest: "_on_remote_request",
    SearchRequest: "_on_search_request",
    HaveReply: "_on_have_reply",
    SessionMessage: "_on_session",
    HandoffMessage: "_on_handoff",
}
