"""RRMP protocol and buffer-management configuration.

One dataclass gathers every tunable the paper names, with defaults set
to the values used in the paper's §4 evaluation:

* intra-region RTT 10 ms (set in the latency model, not here);
* idle threshold ``T = 40 ms`` ("4 times the maximum round trip time");
* expected long-term bufferers ``C`` (Figures 3/4 study C ∈ 1..8; the
  paper's example "when C = 6 … the probability is only 0.25%" makes 6
  the natural default);
* expected remote requests per round ``λ = 1`` (§2.2's example).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

#: FEC operating modes (see :mod:`repro.fec`).
FEC_OFF = "off"                # no erasure coding (the paper's protocol)
FEC_PROACTIVE = "proactive"    # parity multicast as each block fills
FEC_REACTIVE = "reactive"      # parity multicast on first observed request
FEC_MODES = (FEC_OFF, FEC_PROACTIVE, FEC_REACTIVE)

#: Congestion controllers (see :mod:`repro.cc`).
CC_NONE = "none"        # open loop: today's behaviour, byte-identical
CC_TFMCC = "tfmcc"      # NORM-style TCP-friendly, worst-receiver tracking
CC_AIMD = "aimd"        # additive-increase / multiplicative-decrease baseline
CC_CONTROLLERS = (CC_NONE, CC_TFMCC, CC_AIMD)


@dataclass(frozen=True)
class CongestionConfig:
    """Congestion-control sub-configuration (see :mod:`repro.cc`).

    Groups what would otherwise be six more flat ``RrmpConfig`` kwargs.
    The default — controller ``"none"`` — reproduces the open-loop
    sender byte-identically: no feedback reporters are armed and the
    traffic generator is installed on the simulator unchanged.
    """

    #: Which controller drives the sender (one of :data:`CC_CONTROLLERS`).
    controller: str = CC_NONE

    #: Loss fraction the controller steers the worst receiver towards.
    target_loss: float = 0.05

    #: Rate floor/ceiling in messages per second.  The controller's
    #: inter-send credit is clamped to ``[1000/max_rate, 1000/min_rate]``
    #: milliseconds.
    min_rate: float = 1.0
    max_rate: float = 1000.0

    #: How often each receiver unicasts a :class:`FeedbackReport` to the
    #: sender, in milliseconds.
    feedback_interval: float = 50.0

    #: Adaptive-FEC parity-shift bounds.  When ``parity_max`` is set and
    #: the sender runs with ``fec_mode != "off"``, rising loss shifts the
    #: encoder's parity budget up towards ``parity_max`` (and the rate
    #: down); falling loss relaxes it back towards ``parity_min`` (which
    #: defaults to the configured ``fec_parity``).  ``parity_max=None``
    #: disables parity shifting.
    parity_min: Optional[int] = None
    parity_max: Optional[int] = None

    @property
    def enabled(self) -> bool:
        """Whether a real controller (not ``"none"``) is configured."""
        return self.controller != CC_NONE

    def __post_init__(self) -> None:
        if self.controller not in CC_CONTROLLERS:
            raise ValueError(
                f"controller must be one of {CC_CONTROLLERS}, got {self.controller!r}"
            )
        if not 0.0 <= self.target_loss < 1.0:
            raise ValueError(f"target_loss must be in [0, 1), got {self.target_loss!r}")
        if self.min_rate <= 0:
            raise ValueError(f"min_rate must be > 0, got {self.min_rate!r}")
        if self.max_rate < self.min_rate:
            raise ValueError(
                f"max_rate must be >= min_rate, got {self.max_rate!r} < {self.min_rate!r}"
            )
        if self.feedback_interval <= 0:
            raise ValueError(
                f"feedback_interval must be > 0, got {self.feedback_interval!r}"
            )
        for name in ("parity_min", "parity_max"):
            bound = getattr(self, name)
            if bound is not None and bound < 1:
                raise ValueError(f"{name} must be >= 1 or None, got {bound!r}")
        if (
            self.parity_min is not None
            and self.parity_max is not None
            and self.parity_min > self.parity_max
        ):
            raise ValueError(
                f"parity_min must be <= parity_max, got "
                f"{self.parity_min!r} > {self.parity_max!r}"
            )

    def with_overrides(self, **changes: object) -> "CongestionConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class RrmpConfig:
    """Tunable parameters for RRMP error recovery and buffering."""

    #: Expected number of remote requests sent by a region per remote
    #: round when the entire region missed a message (λ in §2.2).  Each
    #: missing member sends with probability λ/n.
    remote_lambda: float = 1.0

    #: Expected number of long-term bufferers per region (C in §3.2).
    #: When a message goes idle each member keeps it with probability
    #: C/n.  C = 0 disables long-term buffering entirely.
    long_term_c: float = 6.0

    #: Idle threshold T (§3.1): a buffered message is discarded (or
    #: promoted to long-term) once no request for it has arrived for
    #: this many milliseconds.  Paper value: 40 ms = 4 × max RTT.
    idle_threshold: float = 40.0

    #: Multiplier applied to the RTT estimate when arming request
    #: timers ("sets a timer according to its estimated round trip
    #: time"; 1.0 reproduces the paper's Figure 5 walkthrough).
    timer_factor: float = 1.0

    #: Interval between sender session messages (§2.1); ``None``
    #: disables them (single-burst experiments detect losses directly).
    session_interval: Optional[float] = 50.0

    #: Optional eventual discard of long-term-buffered messages: drop a
    #: long-term entry once unused for this long ("eventually even a
    #: long-term bufferer may decide to discard an idle message",
    #: §3.2).  ``None`` keeps long-term entries forever.
    long_term_ttl: Optional[float] = None

    #: Maximum random back-off before re-multicasting a remote repair in
    #: the local region, used to suppress duplicate regional multicasts
    #: (§2.2 mentions this trades latency for duplicate suppression).
    #: ``None`` multicasts immediately (the paper's default behaviour).
    regional_backoff_max: Optional[float] = None

    #: Whether remote requests and search requests also refresh the
    #: short-term idle timer.  Any request is evidence the message is
    #: still needed, so the default is ``True``.
    refresh_on_remote_request: bool = True
    refresh_on_search_request: bool = True

    #: Give-up deadline for a recovery, measured from loss detection;
    #: crossing it records a reliability violation (§5 discusses the
    #: small residual violation probability).  ``None`` retries forever.
    max_recovery_time: Optional[float] = None

    #: Safety valve for degenerate configurations (e.g. nobody buffers
    #: a message): stop a search after this many locally-initiated
    #: rounds.  ``None`` searches as long as requests keep failing.
    max_search_rounds: Optional[int] = None

    #: FEC repair subsystem (see :mod:`repro.fec`).  ``fec_mode`` turns
    #: erasure coding off (the paper's protocol), on proactively (the
    #: sender multicasts ``fec_parity`` parity messages as each block
    #: of ``fec_block_size`` data messages completes) or on reactively
    #: (parity for a block is multicast the first time the sender
    #: observes a retransmission request for one of its messages).
    fec_mode: str = FEC_OFF
    fec_block_size: int = 8
    fec_parity: int = 1

    #: Congestion-control sub-configuration (see :mod:`repro.cc`).  The
    #: default controller ``"none"`` keeps the open-loop sender.
    congestion: CongestionConfig = field(default_factory=CongestionConfig)

    def __post_init__(self) -> None:
        if self.remote_lambda < 0:
            raise ValueError(f"remote_lambda must be >= 0, got {self.remote_lambda!r}")
        if self.long_term_c < 0:
            raise ValueError(f"long_term_c must be >= 0, got {self.long_term_c!r}")
        if self.idle_threshold <= 0:
            raise ValueError(f"idle_threshold must be > 0, got {self.idle_threshold!r}")
        if self.timer_factor <= 0:
            raise ValueError(f"timer_factor must be > 0, got {self.timer_factor!r}")
        if self.session_interval is not None and self.session_interval <= 0:
            raise ValueError("session_interval must be > 0 or None")
        if self.long_term_ttl is not None and self.long_term_ttl <= 0:
            raise ValueError("long_term_ttl must be > 0 or None")
        if self.regional_backoff_max is not None and self.regional_backoff_max < 0:
            raise ValueError("regional_backoff_max must be >= 0 or None")
        if self.max_recovery_time is not None and self.max_recovery_time <= 0:
            raise ValueError("max_recovery_time must be > 0 or None")
        if self.max_search_rounds is not None and self.max_search_rounds <= 0:
            raise ValueError("max_search_rounds must be > 0 or None")
        if self.fec_mode not in FEC_MODES:
            raise ValueError(
                f"fec_mode must be one of {FEC_MODES}, got {self.fec_mode!r}"
            )
        if self.fec_block_size < 1:
            raise ValueError(f"fec_block_size must be >= 1, got {self.fec_block_size!r}")
        if self.fec_parity < 0:
            raise ValueError(f"fec_parity must be >= 0, got {self.fec_parity!r}")
        if self.fec_mode != FEC_OFF:
            if self.fec_parity < 1:
                raise ValueError("fec_parity must be >= 1 when fec_mode is on")
            if self.fec_block_size + self.fec_parity > 256:
                raise ValueError(
                    "fec_block_size + fec_parity must be <= 256 (GF(256) limit), "
                    f"got {self.fec_block_size + self.fec_parity}"
                )

    def with_overrides(self, **changes: object) -> "RrmpConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: Configuration matching the paper's §4 simulation setup: T = 40 ms,
#: no session messages (losses are detected simultaneously at t = 0),
#: long-term buffering disabled so Figure 6/7 measure pure short-term
#: (feedback-based) buffering behaviour.
PAPER_SECTION4_CONFIG = RrmpConfig(
    long_term_c=0.0,
    idle_threshold=40.0,
    session_interval=None,
)
