"""Per-loss recovery processes: local and remote phases (paper §2.2).

When a member detects a missing message it starts one
:class:`RecoveryProcess`, which runs the two phases *concurrently*
("the receiver does not know how many members in its region missed the
same message"):

* **Local recovery** — each round, ask one uniformly-random region
  neighbour and arm a timer equal to the round-trip time to it; on
  expiry, ask another.  As long as at least one region member holds
  the message, the pull-epidemic converges.
* **Remote recovery** — each round, choose a uniformly-random member
  *r* of the *parent region*; send it a request only with probability
  λ/n (so the region-wide expected number of remote requests per round
  is λ), but arm the round-trip timer to *r* regardless, keeping every
  missing member's remote phase cycling in lock-step with the region's
  aggregate request stream.

The process ends when the member receives the message (any path), or —
if ``max_recovery_time`` is configured — gives up and records a
reliability violation (the §5 trade-off).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from repro.protocol.config import RrmpConfig
from repro.protocol.messages import LocalRequest, RemoteRequest, Seq
from repro.sim import Simulator, Timer, TraceLog


class RecoveryHost(Protocol):
    """What a recovery process may ask of its hosting member."""

    node_id: int
    sim: Simulator
    trace: TraceLog
    config: RrmpConfig

    def neighbor_ids(self) -> Sequence[int]:
        """Other members of the host's region."""
        ...

    def parent_member_ids(self) -> Sequence[int]:
        """Members of the parent region (empty if the host has none)."""
        ...

    def has_parent_region(self) -> bool:
        """Whether a parent region structurally exists (even if empty).

        Root regions never gain a parent, so their remote phase can
        stay silent; a *currently empty* parent region may refill
        under churn and is worth re-probing.
        """
        ...

    def region_size(self) -> int:
        """Current size of the host's region (the *n* in λ/n)."""
        ...

    def send_local_request(self, dst: int, request: LocalRequest) -> None:
        """Transmit a local retransmission request."""
        ...

    def send_remote_request(self, dst: int, request: RemoteRequest) -> None:
        """Transmit a remote retransmission request."""
        ...

    def rtt_to(self, dst: int) -> float:
        """Round-trip estimate to *dst* (drives retry timers)."""
        ...

    def recovery_rng(self) -> random.Random:
        """Deterministic RNG substream for target selection."""
        ...


class RecoveryProcess:
    """Recovery of one missing message at one member."""

    def __init__(self, host: RecoveryHost, seq: Seq, detected_at: float) -> None:
        self.host = host
        self.seq = seq
        self.detected_at = detected_at
        self.local_rounds = 0
        self.remote_rounds = 0
        self.remote_requests_sent = 0
        self.completed = False
        self.failed = False
        #: Abandoned without the message arriving (member shutdown).
        #: Distinct from ``completed`` so metrics never count a
        #: shutdown-cancelled recovery as a successful completion.
        self.cancelled = False
        self._rng = host.recovery_rng()
        self._local_timer = Timer(host.sim, self._local_round)
        self._remote_timer = Timer(host.sim, self._remote_round)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Kick off both phases concurrently (§2.2)."""
        self._local_round()
        self._remote_round()

    @property
    def active(self) -> bool:
        """Whether this recovery is still running."""
        return not (self.completed or self.failed or self.cancelled)

    def complete(self, now: float) -> None:
        """The message arrived: stop all timers and record latency."""
        if not self.active:
            return
        self.completed = True
        self._stop_timers()
        self.host.trace.emit(
            now,
            "recovery_completed",
            node=self.host.node_id,
            seq=self.seq,
            latency=now - self.detected_at,
            local_rounds=self.local_rounds,
            remote_rounds=self.remote_rounds,
            remote_requests=self.remote_requests_sent,
        )

    def cancel(self) -> None:
        """Abandon silently (member shutdown)."""
        self._stop_timers()
        self.cancelled = True

    def _fail(self) -> None:
        self.failed = True
        self._stop_timers()
        self.host.trace.emit(
            self.host.sim.now,
            "reliability_violation",
            node=self.host.node_id,
            seq=self.seq,
            waited=self.host.sim.now - self.detected_at,
        )

    def _stop_timers(self) -> None:
        self._local_timer.cancel()
        self._remote_timer.cancel()

    def _deadline_exceeded(self) -> bool:
        limit = self.host.config.max_recovery_time
        return limit is not None and (self.host.sim.now - self.detected_at) >= limit

    def _idle_retry_delay(self) -> float:
        """Back-off before re-checking a phase that has no peers *now*.

        Churn can hand a lonely member neighbours (or refill an emptied
        parent region) at any time; a silent phase would never notice.
        The idle threshold is the natural probe period — it is the
        time scale at which buffered state changes hands.
        """
        return self.host.config.idle_threshold * self.host.config.timer_factor

    # ------------------------------------------------------------------
    # Local phase
    # ------------------------------------------------------------------
    def _local_round(self) -> None:
        if not self.active:
            return
        if self._deadline_exceeded():
            self._fail()
            return
        neighbors = list(self.host.neighbor_ids())
        if not neighbors:
            # Alone in the region right now: nobody to ask, but churn
            # may add neighbours, so keep the phase alive instead of
            # going silent forever (no request is sent, no round is
            # counted — this is a probe, not a recovery round).
            self._local_timer.start(self._idle_retry_delay())
            return
        self.local_rounds += 1
        target = self._rng.choice(neighbors)
        self.host.send_local_request(
            target, LocalRequest(seq=self.seq, requester=self.host.node_id)
        )
        self._local_timer.start(
            self.host.rtt_to(target) * self.host.config.timer_factor
        )

    # ------------------------------------------------------------------
    # Remote phase
    # ------------------------------------------------------------------
    def _remote_round(self) -> None:
        if not self.active:
            return
        if self._deadline_exceeded():
            self._fail()
            return
        parents = list(self.host.parent_member_ids())
        if not parents:
            # §2.2: "If a receiver has no parent region, its remote
            # recovery phase does nothing."  That is structural for a
            # root region (regions never gain a parent), so stay
            # silent there; a parent region that exists but is
            # *currently empty* may refill under churn, so re-arm a
            # probe timer rather than abandoning the phase.
            if self.host.has_parent_region():
                self._remote_timer.start(self._idle_retry_delay())
            return
        self.remote_rounds += 1
        # Choose r first; the timer tracks r whether or not the
        # probabilistic send happens (§2.2).
        target = self._rng.choice(parents)
        region_size = max(1, self.host.region_size())
        probability = min(1.0, self.host.config.remote_lambda / region_size)
        if self._rng.random() < probability:
            self.remote_requests_sent += 1
            self.host.send_remote_request(
                target, RemoteRequest(seq=self.seq, requester=self.host.node_id)
            )
        self._remote_timer.start(
            self.host.rtt_to(target) * self.host.config.timer_factor
        )
