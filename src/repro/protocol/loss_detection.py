"""Loss detection: sequence-number gaps and session-message advertisements.

"A receiver detects a message loss by observing a gap in the sequence
number space.  In addition, session messages are used to help a
receiver detect the loss of the last message in a burst." (§2.1)

:class:`GapTracker` is the per-member detector.  It reports each
missing sequence number exactly once (the member then owns the recovery
process for it) and keeps the received-set that the member consults for
duplicate suppression and for the "received but discarded" branch of
remote-request handling (§3.3).
"""

from __future__ import annotations

from typing import List, Set

from repro.protocol.messages import Seq


class GapTracker:
    """Tracks received sequence numbers and detects losses.

    Sequence numbers start at ``first_seq`` (default 1) and are dense:
    every seq in ``[first_seq, highest]`` is expected, where ``highest``
    is the largest seq either received or advertised by a session
    message / remote request.
    """

    def __init__(self, first_seq: Seq = 1) -> None:
        self.first_seq = first_seq
        self.received: Set[Seq] = set()
        self.highest: Seq = first_seq - 1
        self._reported: Set[Seq] = set()
        self._prefix: Seq = first_seq - 1

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def on_receive(self, seq: Seq) -> List[Seq]:
        """Record receipt of *seq*; return newly-detected missing seqs.

        Receiving seq 5 when the highest previously seen was 2 reveals
        that 3 and 4 are missing (unless already received/reported).
        """
        self.received.add(seq)
        self._reported.discard(seq)
        return self._advance(seq)

    def on_advertise(self, max_seq: Seq) -> List[Seq]:
        """A session message (or request) advertised *max_seq*.

        Every unreceived seq up to *max_seq* becomes a detected loss;
        returns only the newly-detected ones.
        """
        return self._advance(max_seq, include_endpoint=True)

    def _advance(self, seq: Seq, include_endpoint: bool = False) -> List[Seq]:
        end = seq + 1 if include_endpoint else seq
        newly_missing: List[Seq] = []
        if end - 1 > self.highest:
            for missing in range(self.highest + 1, end):
                if missing not in self.received and missing not in self._reported:
                    self._reported.add(missing)
                    newly_missing.append(missing)
            self.highest = end - 1
        return newly_missing

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_received(self, seq: Seq) -> bool:
        """Whether *seq* has ever been received."""
        return seq in self.received

    def missing(self) -> List[Seq]:
        """Currently-known missing seqs, in order."""
        return sorted(s for s in self._reported if s not in self.received)

    @property
    def received_count(self) -> int:
        """Number of distinct messages received."""
        return len(self.received)

    def contiguous_prefix(self) -> Seq:
        """Largest seq such that every message up to it has been received.

        This is the *low watermark* the stability-detection baseline
        gossips: a message is stable once it is below every member's
        watermark.  Returns ``first_seq - 1`` when nothing contiguous
        has arrived yet.
        """
        while (self._prefix + 1) in self.received:
            self._prefix += 1
        return self._prefix
