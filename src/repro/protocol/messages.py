"""RRMP wire messages.

All messages are small frozen dataclasses.  ``kind`` drives the loss
model (``"data"`` packets carry message bodies; ``"control"`` packets
are requests/replies/session messages — the traffic the paper assumes
is never lost in §4).  ``wire_size`` feeds traffic-overhead accounting.

Because RRMP is a single-sender protocol (§2), a message is identified
by its sequence number alone; the general ``[source address, sequence
number]`` identifier from the paper's footnote degenerates to ``seq``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

from repro.net.packet import KIND_CONTROL, KIND_DATA
from repro.net.topology import NodeId

Seq = int

#: Nominal wire sizes (bytes) used for overhead accounting.
DATA_WIRE_SIZE = 1024
CONTROL_WIRE_SIZE = 64


@dataclass(frozen=True)
class DataMessage:
    """An application message: the unit the sender multicasts.

    ``payload`` is opaque to the protocol; experiments leave it ``None``.
    """

    seq: Seq
    sender: NodeId
    payload: Any = None
    kind: str = field(default=KIND_DATA, repr=False)
    wire_size: int = field(default=DATA_WIRE_SIZE, repr=False)


@dataclass(frozen=True)
class LocalRequest:
    """Retransmission request to a randomly-selected region neighbour (§2.2)."""

    seq: Seq
    requester: NodeId
    kind: str = field(default=KIND_CONTROL, repr=False)
    wire_size: int = field(default=CONTROL_WIRE_SIZE, repr=False)


@dataclass(frozen=True)
class RemoteRequest:
    """Retransmission request to a random member of the parent region (§2.2).

    Sent with probability λ/n per round so the region-wide expected
    number of remote requests per try is λ.
    """

    seq: Seq
    requester: NodeId
    kind: str = field(default=KIND_CONTROL, repr=False)
    wire_size: int = field(default=CONTROL_WIRE_SIZE, repr=False)


#: How a repair reached a receiver; drives the receiver's next action
#: (a remote repair is re-multicast within the receiver's region, §2.2).
REPAIR_LOCAL = "local"          # unicast reply to a local request
REPAIR_REMOTE = "remote"        # unicast from a parent-region member
REPAIR_REGIONAL = "regional"    # regional re-multicast of a remote repair
REPAIR_RELAY = "relay"          # a parent-region member relaying a message
                                # it had recorded a waiter for (§2.2)


@dataclass(frozen=True)
class Repair:
    """A retransmission carrying the full message body."""

    data: DataMessage
    responder: NodeId
    scope: str
    kind: str = field(default=KIND_DATA, repr=False)
    wire_size: int = field(default=DATA_WIRE_SIZE, repr=False)

    @property
    def seq(self) -> Seq:
        """Sequence number of the repaired message."""
        return self.data.seq


#: Parity identifiers live in a reserved negative sequence space so
#: they can share the buffer policies' ``Seq`` keying without ever
#: colliding with data messages (data seqs start at 1).  The stride
#: bounds ``r`` at 256 parity shards per block, matching GF(256).
_PARITY_SEQ_STRIDE = 256


def parity_seq(block_id: int, index: int) -> Seq:
    """The reserved (negative) sequence number of one parity message."""
    return -(block_id * _PARITY_SEQ_STRIDE + index + 1)


@dataclass(frozen=True)
class ParityMessage:
    """One erasure-coded parity shard for a block of data messages.

    ``block_seqs`` names the ``k`` data messages the block covers (so
    receivers can associate cached shards without any out-of-band block
    map), ``index`` is this shard's position among the block's ``r``
    parity shards, and ``shard`` is the coded bytes (padded to the
    block's longest data shard).  Parity is data-plane traffic: it is
    subject to multicast loss and sized like a data packet.
    """

    block_id: int
    index: int
    r: int
    block_seqs: Tuple[Seq, ...]
    shard: bytes
    sender: NodeId
    kind: str = field(default=KIND_DATA, repr=False)
    wire_size: int = field(default=DATA_WIRE_SIZE, repr=False)

    @property
    def seq(self) -> Seq:
        """Reserved negative identifier (see :func:`parity_seq`)."""
        return parity_seq(self.block_id, self.index)


@dataclass(frozen=True)
class SessionMessage:
    """Periodic sender heartbeat advertising the highest sequence number.

    Lets receivers detect the loss of the last message in a burst
    (§2.1) — a gap-based detector alone can never notice a missing tail.
    """

    sender: NodeId
    max_seq: Seq
    kind: str = field(default=KIND_CONTROL, repr=False)
    wire_size: int = field(default=CONTROL_WIRE_SIZE, repr=False)


@dataclass(frozen=True)
class FeedbackReport:
    """Receiver → sender congestion feedback (see :mod:`repro.cc`).

    Armed only when a congestion controller is configured; each
    receiver periodically unicasts its locally observed state so the
    sender can track the worst-percentile receiver (NORM/TFMCC style):
    ``loss_estimate`` is the fraction of the sender's stream the
    receiver has not (yet) delivered, ``rtt_ms`` its current RTT
    estimate towards the sender, ``max_seq`` the highest sequence it
    knows about and ``received`` how many distinct data messages it has
    delivered.
    """

    receiver: NodeId
    loss_estimate: float
    rtt_ms: float
    max_seq: Seq
    received: int
    kind: str = field(default=KIND_CONTROL, repr=False)
    wire_size: int = field(default=CONTROL_WIRE_SIZE, repr=False)


@dataclass(frozen=True)
class SearchRequest:
    """A remote request being walked through the region to find a bufferer (§3.3).

    ``waiters`` are the downstream (remote) receivers that should get
    the repair once a bufferer is found; ``forwarder`` is the region
    member that forwarded this hop.  ``hops`` counts consecutive
    *redirect* hops (owner-hint forwards); it bounds pathological hint
    chains when announced owners have since discarded the message.
    """

    seq: Seq
    waiters: Tuple[NodeId, ...]
    forwarder: NodeId
    hops: int = 0
    kind: str = field(default=KIND_CONTROL, repr=False)
    wire_size: int = field(default=CONTROL_WIRE_SIZE, repr=False)


@dataclass(frozen=True)
class HaveReply:
    """Regional multicast "I have the message" that terminates a search (§3.3)."""

    seq: Seq
    owner: NodeId
    kind: str = field(default=KIND_CONTROL, repr=False)
    wire_size: int = field(default=CONTROL_WIRE_SIZE, repr=False)


@dataclass(frozen=True)
class HandoffMessage:
    """Long-term buffer transfer from a gracefully leaving member (§3.2)."""

    data: DataMessage
    from_member: NodeId
    kind: str = field(default=KIND_DATA, repr=False)
    wire_size: int = field(default=DATA_WIRE_SIZE, repr=False)

    @property
    def seq(self) -> Seq:
        """Sequence number of the transferred message."""
        return self.data.seq


#: Every message type that can cross a real wire.  The live UDP codec
#: (:mod:`repro.live.codec`) must know how to encode and decode each of
#: these; its tests iterate this tuple so adding a message type without
#: wire support fails loudly instead of at the first live run.
WIRE_MESSAGE_TYPES = (
    DataMessage,
    LocalRequest,
    RemoteRequest,
    Repair,
    ParityMessage,
    SessionMessage,
    SearchRequest,
    HaveReply,
    HandoffMessage,
    FeedbackReport,
)
