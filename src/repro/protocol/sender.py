"""The RRMP sender.

RRMP targets single-sender multicast applications (§2).  The sender is
itself a group member ("The sender joins the multicast group before it
starts sending messages, and consequently is also a receiver"), so
:class:`RrmpSender` wraps an :class:`~repro.protocol.member.RrmpMember`
and adds:

* sequence-numbered multicasts whose per-receiver outcome is drawn from
  a :class:`~repro.net.ipmulticast.MulticastOutcome` model (the
  documented substitution for real IP multicast);
* periodic session messages advertising the highest sequence number, so
  receivers can detect the loss of the last message in a burst (§2.1);
* the sender half of the FEC repair subsystem (:mod:`repro.fec`): data
  messages are grouped into blocks of ``fec_block_size`` and each
  block's ``fec_parity`` parity messages are multicast either as the
  block fills (proactive) or on the first retransmission request the
  sender observes for the block (reactive).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.fec.encoder import FecEncoder
from repro.net.ipmulticast import MulticastOutcome, PerfectOutcome
from repro.net.topology import NodeId
from repro.protocol.config import FEC_OFF, FEC_PROACTIVE, FEC_REACTIVE
from repro.protocol.member import RrmpMember
from repro.protocol.messages import (
    DATA_WIRE_SIZE,
    DataMessage,
    ParityMessage,
    Seq,
    SessionMessage,
)
from repro.sim import PeriodicTask


class RrmpSender:
    """Multicast source for one RRMP session."""

    def __init__(
        self,
        member: RrmpMember,
        outcome: Optional[MulticastOutcome] = None,
    ) -> None:
        self.member = member
        self.outcome = outcome if outcome is not None else PerfectOutcome()
        self.next_seq: Seq = 1
        self._rng = member.streams.stream("sender", member.node_id, "outcome")
        #: Separate substream for parity outcomes so enabling FEC does
        #: not perturb the data-loss pattern of an equally-seeded run —
        #: fec_mode sweeps stay sample-path comparable.
        self._parity_rng = member.streams.stream(
            "sender", member.node_id, "parity-outcome"
        )
        self._session_task: Optional[PeriodicTask] = None
        interval = member.config.session_interval
        if interval is not None:
            self._session_task = PeriodicTask(member.sim, interval, self._send_session)
            self._session_task.start()
        self.fec: Optional[FecEncoder] = None
        if member.config.fec_mode != FEC_OFF:
            self.fec = FecEncoder(
                block_size=member.config.fec_block_size,
                parity=member.config.fec_parity,
                sender=member.node_id,
            )
            if member.config.fec_mode == FEC_REACTIVE:
                member.repair_interest_hook = self._on_repair_interest

    @property
    def node_id(self) -> NodeId:
        """The sender's member id."""
        return self.member.node_id

    @property
    def max_seq(self) -> Seq:
        """Highest sequence number multicast so far (0 before any send)."""
        return self.next_seq - 1

    def group(self) -> Sequence[NodeId]:
        """The full multicast group (every node in the hierarchy)."""
        return self.member.hierarchy.nodes

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def multicast(self, payload: Any = None) -> DataMessage:
        """Multicast the next message; returns the DataMessage sent.

        The outcome model picks which receivers the unreliable IP
        multicast reaches; everyone else must recover the loss.  The
        sender always holds its own message.
        """
        data = DataMessage(seq=self.next_seq, sender=self.node_id, payload=payload)
        self.next_seq += 1
        group = list(self.group())
        holders = set(self.outcome.holders(data.seq, group, self._rng))
        holders.add(self.node_id)
        self.member.trace.emit(
            self.member.sim.now,
            "message_sent",
            seq=data.seq,
            holders=len(holders),
            group=len(group),
        )
        # The sender delivers to itself directly; remote holders get the
        # message through the network (per-receiver latency).
        self.member.inject_receive(data, via="multicast")
        targets = [node for node in group if node in holders and node != self.node_id]
        self.member.network.multicast(self.node_id, targets, data, group="session")
        if self.fec is not None:
            completed_block = self.fec.add(data)
            if (
                completed_block is not None
                and self.member.config.fec_mode == FEC_PROACTIVE
            ):
                self._emit_parity(completed_block, trigger="proactive")
        return data

    def multicast_burst(self, count: int, payload: Any = None) -> Sequence[DataMessage]:
        """Multicast *count* messages back-to-back at the current instant."""
        return [self.multicast(payload) for _ in range(count)]

    # ------------------------------------------------------------------
    # FEC parity emission
    # ------------------------------------------------------------------
    def flush_parity(self) -> List[ParityMessage]:
        """Seal the current partial block and emit *its* parity.

        Call at the end of a burst or session so a tail block shorter
        than ``fec_block_size`` is still protected.  Only the tail
        block is touched: in reactive mode, earlier sealed blocks keep
        waiting for an observed request (bulk-encoding them here would
        silently turn reactive into proactive-at-the-end).  No-op
        (empty list) when FEC is off or no partial block is pending.
        """
        if self.fec is None:
            return []
        block_id = self.fec.flush()
        if block_id is None:
            return []
        return self._emit_parity(block_id, trigger="flush")

    def _on_repair_interest(self, seq: Seq) -> None:
        """Reactive mode: a request the sender observed names *seq*."""
        if self.fec is None:
            return
        block_id = self.fec.block_containing(seq)
        if block_id is None or self.fec.is_encoded(block_id):
            return
        self._emit_parity(block_id, trigger="reactive")

    def _emit_parity(self, block_id: int, trigger: str) -> List[ParityMessage]:
        """Encode one block and multicast its parity through the outcome model."""
        assert self.fec is not None
        parities = self.fec.encode_block(block_id)
        if not parities:
            return []
        first = parities[0]
        self.member.trace.emit(
            self.member.sim.now,
            "fec_encode",
            block=block_id,
            k=len(first.block_seqs),
            r=first.r,
            trigger=trigger,
        )
        self.member.trace.emit(
            self.member.sim.now,
            "fec_parity_overhead",
            block=block_id,
            parity_messages=len(parities),
            parity_bytes=sum(parity.wire_size for parity in parities),
            data_bytes=len(first.block_seqs) * DATA_WIRE_SIZE,
        )
        group = list(self.group())
        for parity in parities:
            self.member.inject_parity(parity)
            holders = set(self.outcome.holders(parity.seq, group, self._parity_rng))
            targets = [
                node for node in group if node in holders and node != self.node_id
            ]
            self.member.network.multicast(
                self.node_id, targets, parity, group="session"
            )
        return parities

    # ------------------------------------------------------------------
    # Session messages
    # ------------------------------------------------------------------
    def _send_session(self) -> None:
        if self.max_seq < 1 or not self.member.alive:
            return
        message = SessionMessage(sender=self.node_id, max_seq=self.max_seq)
        group = [node for node in self.group() if node != self.node_id]
        self.member.network.multicast(self.node_id, group, message, group="session")

    def stop(self) -> None:
        """Stop session messages (end of session)."""
        if self._session_task is not None:
            self._session_task.stop()
