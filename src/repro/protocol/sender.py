"""The RRMP sender.

RRMP targets single-sender multicast applications (§2).  The sender is
itself a group member ("The sender joins the multicast group before it
starts sending messages, and consequently is also a receiver"), so
:class:`RrmpSender` wraps an :class:`~repro.protocol.member.RrmpMember`
and adds:

* sequence-numbered multicasts whose per-receiver outcome is drawn from
  a :class:`~repro.net.ipmulticast.MulticastOutcome` model (the
  documented substitution for real IP multicast);
* periodic session messages advertising the highest sequence number, so
  receivers can detect the loss of the last message in a burst (§2.1).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from repro.net.ipmulticast import MulticastOutcome, PerfectOutcome
from repro.net.topology import NodeId
from repro.protocol.member import RrmpMember
from repro.protocol.messages import DataMessage, Seq, SessionMessage
from repro.sim import PeriodicTask


class RrmpSender:
    """Multicast source for one RRMP session."""

    def __init__(
        self,
        member: RrmpMember,
        outcome: Optional[MulticastOutcome] = None,
    ) -> None:
        self.member = member
        self.outcome = outcome if outcome is not None else PerfectOutcome()
        self.next_seq: Seq = 1
        self._rng = member.streams.stream("sender", member.node_id, "outcome")
        self._session_task: Optional[PeriodicTask] = None
        interval = member.config.session_interval
        if interval is not None:
            self._session_task = PeriodicTask(member.sim, interval, self._send_session)
            self._session_task.start()

    @property
    def node_id(self) -> NodeId:
        """The sender's member id."""
        return self.member.node_id

    @property
    def max_seq(self) -> Seq:
        """Highest sequence number multicast so far (0 before any send)."""
        return self.next_seq - 1

    def group(self) -> Sequence[NodeId]:
        """The full multicast group (every node in the hierarchy)."""
        return self.member.hierarchy.nodes

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def multicast(self, payload: Any = None) -> DataMessage:
        """Multicast the next message; returns the DataMessage sent.

        The outcome model picks which receivers the unreliable IP
        multicast reaches; everyone else must recover the loss.  The
        sender always holds its own message.
        """
        data = DataMessage(seq=self.next_seq, sender=self.node_id, payload=payload)
        self.next_seq += 1
        group = list(self.group())
        holders = set(self.outcome.holders(data.seq, group, self._rng))
        holders.add(self.node_id)
        self.member.trace.emit(
            self.member.sim.now,
            "message_sent",
            seq=data.seq,
            holders=len(holders),
            group=len(group),
        )
        # The sender delivers to itself directly; remote holders get the
        # message through the network (per-receiver latency).
        self.member.inject_receive(data, via="multicast")
        targets = [node for node in group if node in holders and node != self.node_id]
        self.member.network.multicast(self.node_id, targets, data, group="session")
        return data

    def multicast_burst(self, count: int, payload: Any = None) -> Sequence[DataMessage]:
        """Multicast *count* messages back-to-back at the current instant."""
        return [self.multicast(payload) for _ in range(count)]

    # ------------------------------------------------------------------
    # Session messages
    # ------------------------------------------------------------------
    def _send_session(self) -> None:
        if self.max_seq < 1 or not self.member.alive:
            return
        message = SessionMessage(sender=self.node_id, max_seq=self.max_seq)
        group = [node for node in self.group() if node != self.node_id]
        self.member.network.multicast(self.node_id, group, message, group="session")

    def stop(self) -> None:
        """Stop session messages (end of session)."""
        if self._session_task is not None:
            self._session_task.stop()
