"""The RRMP protocol (system S3 in DESIGN.md).

Wire messages, configuration, loss detection, the two-phase randomized
error-recovery algorithm (§2.2) and the member/sender state machines,
plus the :class:`RrmpSimulation` facade that assembles a full group.

This package resolves its exports lazily (PEP 562).  The buffering
layer (:mod:`repro.core`) imports the message definitions from
:mod:`repro.protocol.messages`, while the member state machine imports
the buffering layer — eager re-exports here would close an import
cycle through this ``__init__``.
"""

from typing import TYPE_CHECKING

#: export name -> submodule that defines it
_EXPORTS = {
    "CC_AIMD": "config",
    "CC_CONTROLLERS": "config",
    "CC_NONE": "config",
    "CC_TFMCC": "config",
    "CONTROL_WIRE_SIZE": "messages",
    "CongestionConfig": "config",
    "DATA_WIRE_SIZE": "messages",
    "DataMessage": "messages",
    "FEC_MODES": "config",
    "FeedbackReport": "messages",
    "FEC_OFF": "config",
    "FEC_PROACTIVE": "config",
    "FEC_REACTIVE": "config",
    "GapTracker": "loss_detection",
    "HandoffMessage": "messages",
    "HaveReply": "messages",
    "LocalRequest": "messages",
    "PAPER_SECTION4_CONFIG": "config",
    "ParityMessage": "messages",
    "PolicyFactory": "rrmp",
    "REPAIR_LOCAL": "messages",
    "REPAIR_REGIONAL": "messages",
    "REPAIR_RELAY": "messages",
    "REPAIR_REMOTE": "messages",
    "RecoveryHost": "recovery",
    "RecoveryProcess": "recovery",
    "MeasuringRttProvider": "rtt",
    "RemoteRequest": "messages",
    "Repair": "messages",
    "RrmpConfig": "config",
    "RttEstimator": "rtt",
    "attach_rtt_estimation": "rtt",
    "RrmpMember": "member",
    "RrmpSender": "sender",
    "RrmpSimulation": "rrmp",
    "SearchRequest": "messages",
    "Seq": "messages",
    "SessionMessage": "messages",
    "VIA_FEC": "member",
    "VIA_HANDOFF": "member",
    "VIA_INJECTED": "member",
    "VIA_LOCAL_REPAIR": "member",
    "VIA_MULTICAST": "member",
    "VIA_REGIONAL": "member",
    "VIA_REMOTE_REPAIR": "member",
    "two_phase_policy_factory": "rrmp",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Lazily import exported names from their defining submodule."""
    submodule_name = _EXPORTS.get(name)
    if submodule_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    submodule = importlib.import_module(f"{__name__}.{submodule_name}")
    value = getattr(submodule, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.protocol.config import (
        CC_AIMD,
        CC_CONTROLLERS,
        CC_NONE,
        CC_TFMCC,
        FEC_MODES,
        FEC_OFF,
        FEC_PROACTIVE,
        FEC_REACTIVE,
        PAPER_SECTION4_CONFIG,
        CongestionConfig,
        RrmpConfig,
    )
    from repro.protocol.loss_detection import GapTracker
    from repro.protocol.member import (
        VIA_FEC,
        VIA_HANDOFF,
        VIA_INJECTED,
        VIA_LOCAL_REPAIR,
        VIA_MULTICAST,
        VIA_REGIONAL,
        VIA_REMOTE_REPAIR,
        RrmpMember,
    )
    from repro.protocol.messages import (
        CONTROL_WIRE_SIZE,
        DATA_WIRE_SIZE,
        REPAIR_LOCAL,
        REPAIR_REGIONAL,
        REPAIR_RELAY,
        REPAIR_REMOTE,
        DataMessage,
        FeedbackReport,
        HandoffMessage,
        HaveReply,
        LocalRequest,
        ParityMessage,
        RemoteRequest,
        Repair,
        SearchRequest,
        Seq,
        SessionMessage,
    )
    from repro.protocol.recovery import RecoveryHost, RecoveryProcess
    from repro.protocol.rrmp import (
        PolicyFactory,
        RrmpSimulation,
        two_phase_policy_factory,
    )
    from repro.protocol.sender import RrmpSender
