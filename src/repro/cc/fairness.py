"""Fairness duel: two competing adaptive senders on one bottleneck.

Protocol-level fairness across *sessions* is a controller property, so
it is evaluated the way the congestion-control literature does: two
controller instances share a bottleneck of ``capacity`` messages per
second inside one simulator.  Every ``feedback_interval`` each flow
receives a synthetic :class:`~repro.protocol.messages.FeedbackReport`
whose loss estimate is the bottleneck's excess ratio::

    p = max(0, (r_a + r_b - capacity) / (r_a + r_b))

— both flows observe the same congestion signal, as co-located
receivers behind a shared constrained link would.  One flow starts at
the rate ceiling and the other at the floor, so the duel measures
*convergence to fairness*, not a symmetric fixed point.

The verdict is Jain's fairness index over the flows' mean rates in the
second half of the run (the first half is convergence transient)::

    J(x_1..x_n) = (sum x_i)^2 / (n * sum x_i^2)

J = 1 is a perfectly fair split; J = 1/n is maximal unfairness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.cc.controller import controller_for
from repro.protocol.config import CongestionConfig
from repro.protocol.messages import FeedbackReport
from repro.sim import PeriodicTask, Simulator


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index of *rates* (1.0 = perfectly fair)."""
    if not rates:
        return 1.0
    total = sum(rates)
    squares = sum(rate * rate for rate in rates)
    if squares <= 0.0:
        return 1.0
    return (total * total) / (len(rates) * squares)


@dataclass
class FairnessResult:
    """Outcome of one shared-bottleneck duel."""

    controller: str
    capacity: float
    rates: Tuple[float, ...]       # mean msgs/s per flow, second half
    jain: float
    utilization: float             # sum(rates) / capacity
    samples: int

    def to_dict(self) -> dict:
        """JSON-ready form (used by the CC ablation experiment)."""
        return {
            "controller": self.controller,
            "capacity": self.capacity,
            "rates": list(self.rates),
            "jain": self.jain,
            "utilization": self.utilization,
            "samples": self.samples,
        }


def run_fairness_duel(controller: str, *,
                      capacity: float = 200.0,
                      duration_ms: float = 60_000.0,
                      feedback_interval: float = 50.0,
                      rtt_ms: float = 10.0,
                      config: CongestionConfig = None) -> FairnessResult:
    """Run two *controller* flows against a shared bottleneck.

    Deterministic: the bottleneck model is closed-form, so the result
    is a pure function of the arguments.
    """
    if config is None:
        config = CongestionConfig(
            controller=controller,
            feedback_interval=feedback_interval,
        )
    else:
        config = config.with_overrides(controller=controller,
                                       feedback_interval=feedback_interval)
    sim = Simulator()
    flows = [
        controller_for(config, initial_rate=config.max_rate),
        controller_for(config, initial_rate=config.min_rate),
    ]
    samples: Tuple[list, list] = ([], [])
    measure_from = duration_ms / 2.0

    def tick() -> None:
        now = sim.now
        total = sum(flow.rate for flow in flows)
        loss = max(0.0, (total - capacity) / total) if total > 0 else 0.0
        for index, flow in enumerate(flows):
            report = FeedbackReport(
                receiver=index,
                loss_estimate=loss,
                rtt_ms=rtt_ms,
                max_seq=0,
                received=0,
            )
            flow.on_feedback(now, report)
            if now >= measure_from:
                samples[index].append(flow.rate)

    task = PeriodicTask(sim, feedback_interval, tick)
    task.start()
    sim.run(until=duration_ms)
    task.stop()

    means = tuple(
        sum(values) / len(values) if values else 0.0 for values in samples
    )
    return FairnessResult(
        controller=controller,
        capacity=capacity,
        rates=means,
        jain=jain_index(means),
        utilization=sum(means) / capacity if capacity > 0 else 0.0,
        samples=len(samples[0]),
    )
