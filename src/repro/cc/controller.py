"""Congestion controllers: the control laws behind the adaptive sender.

A controller is a pure, deterministic state machine — no clock, no
network, no randomness.  The :class:`~repro.cc.driver.CongestionDriver`
feeds it events (sends, receiver feedback reports, observed NACKs) and
asks it two questions: *when may the next message go out*
(:meth:`CongestionController.send_credit`) and *how much proactive FEC
parity should a block carry* (:meth:`CongestionController.parity_budget`).
Determinism makes the control laws unit-testable from synthetic feedback
traces alone.

Rates are expressed in messages per second (the human-facing unit of
:class:`~repro.protocol.config.CongestionConfig`); the simulator clock
is milliseconds, so the inter-send credit is ``1000 / rate`` ms.

The adaptive controllers evaluate once per feedback window (the
config's ``feedback_interval``): per-receiver reports accumulate into
the window, and the first event past its end closes it and adjusts the
rate from the *worst* receiver observed — NORM/TFMCC's "current
limiting receiver" rule, which makes a multicast flow no faster than
its slowest member can absorb.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Protocol

from repro.protocol.config import CC_AIMD, CC_NONE, CC_TFMCC, CongestionConfig
from repro.protocol.messages import FeedbackReport, Seq

_UNLIMITED = float("-inf")


class CongestionController(Protocol):
    """What the send driver needs from a congestion-control law."""

    name: str

    def on_send(self, now: float) -> None:
        """A data message was multicast at *now*."""
        ...

    def on_feedback(self, now: float, report: FeedbackReport) -> None:
        """A receiver's periodic feedback report arrived at *now*."""
        ...

    def on_nack(self, now: float, seq: Seq) -> None:
        """The sender observed a retransmission request for *seq*."""
        ...

    def send_credit(self, now: float) -> float:
        """Earliest instant the next send is permitted (``-inf``: now)."""
        ...

    def interval(self) -> float:
        """Current inter-send gap in ms (0 when unlimited)."""
        ...

    def parity_budget(self, block_size: int, base_parity: int) -> int:
        """Proactive parity messages the current loss regime warrants."""
        ...


class NoneCc:
    """Open loop: never defers a send, never shifts parity.

    With this controller the driver degenerates to the historical
    precomputed schedule — materialization keeps the open-loop fast
    path, so runs are byte-identical to the pre-congestion-control
    code.
    """

    name = CC_NONE

    def on_send(self, now: float) -> None:
        pass

    def on_feedback(self, now: float, report: FeedbackReport) -> None:
        pass

    def on_nack(self, now: float, seq: Seq) -> None:
        pass

    def send_credit(self, now: float) -> float:
        return _UNLIMITED

    def interval(self) -> float:
        return 0.0

    def parity_budget(self, block_size: int, base_parity: int) -> int:
        return base_parity


@dataclass
class ReceiverState:
    """Last feedback seen from one receiver."""

    loss: float
    rtt_ms: float
    time: float


class _AdaptiveBase:
    """Shared plumbing for the rate-adapting controllers."""

    name = "adaptive"

    def __init__(self, config: CongestionConfig,
                 initial_rate: Optional[float] = None) -> None:
        self.config = config
        self._min_interval = 1000.0 / config.max_rate
        self._max_interval = 1000.0 / config.min_rate
        # Optimistic start: run at the configured ceiling until feedback
        # says otherwise, so an uncongested stream is untouched.
        start_rate = config.max_rate if initial_rate is None else initial_rate
        self._interval = self._clamp(1000.0 / start_rate)
        self._last_send: Optional[float] = None
        self.receivers: Dict[int, ReceiverState] = {}
        self._window_start: Optional[float] = None
        self._window_nacks = 0

    # -- driver surface -------------------------------------------------
    def on_send(self, now: float) -> None:
        self._last_send = now

    def on_nack(self, now: float, seq: Seq) -> None:
        self._maybe_close_window(now)
        self._window_nacks += 1

    def on_feedback(self, now: float, report: FeedbackReport) -> None:
        self._maybe_close_window(now)
        self.receivers[report.receiver] = ReceiverState(
            loss=report.loss_estimate, rtt_ms=report.rtt_ms, time=now
        )

    def send_credit(self, now: float) -> float:
        if self._last_send is None:
            return _UNLIMITED
        return self._last_send + self._interval

    def interval(self) -> float:
        return self._interval

    @property
    def rate(self) -> float:
        """Current rate in messages per second."""
        return 1000.0 / self._interval

    def parity_budget(self, block_size: int, base_parity: int) -> int:
        cfg = self.config
        if cfg.parity_max is None:
            return base_parity
        floor = cfg.parity_min if cfg.parity_min is not None else base_parity
        worst = self.worst_loss()
        # Cover the expected per-block losses of the worst receiver with
        # one message of headroom; relax back to the floor as loss fades.
        needed = floor if worst <= 0.0 else math.ceil(worst * block_size) + 1
        budget = min(max(floor, needed), cfg.parity_max)
        # GF(256) hard limit regardless of configured bounds.
        return min(budget, 256 - block_size)

    # -- control-law helpers -------------------------------------------
    def worst_loss(self) -> float:
        """Highest loss estimate across all receivers heard from."""
        if not self.receivers:
            return 0.0
        return max(state.loss for state in self.receivers.values())

    def worst_receiver(self) -> Optional[ReceiverState]:
        """The current limiting receiver (highest loss; slowest on ties)."""
        if not self.receivers:
            return None
        return max(self.receivers.values(), key=lambda s: (s.loss, s.rtt_ms))

    def set_rate(self, rate: float) -> None:
        """Clamp *rate* (msgs/s) into configured bounds and adopt it."""
        self._interval = self._clamp(1000.0 / max(rate, 1e-9))

    def _clamp(self, interval: float) -> float:
        return min(max(interval, self._min_interval), self._max_interval)

    def _maybe_close_window(self, now: float) -> None:
        if self._window_start is None:
            self._window_start = now
            return
        if now - self._window_start < self.config.feedback_interval:
            return
        nacks = self._window_nacks
        self._window_start = now
        self._window_nacks = 0
        self._adjust(now, nacks)

    def _adjust(self, now: float, window_nacks: int) -> None:
        raise NotImplementedError


class AimdController(_AdaptiveBase):
    """Additive-increase / multiplicative-decrease baseline.

    Once per feedback window: if the worst receiver's loss exceeds the
    target (or the sender observed NACKs in the window), the rate is
    multiplied by ``decrease_factor``; otherwise it grows by
    ``additive_increase`` messages/second.  The textbook sawtooth —
    simple, stable, and the yardstick the TFMCC controller is judged
    against.
    """

    name = CC_AIMD

    def __init__(self, config: CongestionConfig,
                 initial_rate: Optional[float] = None,
                 additive_increase: float = 10.0,
                 decrease_factor: float = 0.5) -> None:
        super().__init__(config, initial_rate)
        if additive_increase <= 0:
            raise ValueError(f"additive_increase must be > 0, got {additive_increase!r}")
        if not 0.0 < decrease_factor < 1.0:
            raise ValueError(f"decrease_factor must be in (0, 1), got {decrease_factor!r}")
        self.additive_increase = additive_increase
        self.decrease_factor = decrease_factor

    def _adjust(self, now: float, window_nacks: int) -> None:
        congested = self.worst_loss() > self.config.target_loss or window_nacks > 0
        if congested:
            self.set_rate(self.rate * self.decrease_factor)
        else:
            self.set_rate(self.rate + self.additive_increase)


def tcp_friendly_rate(loss: float, rtt_ms: float, rto_ms: Optional[float] = None,
                      ) -> float:
    """TCP-throughput-equation rate in messages/second.

    The simplified Padhye et al. response function used by TFMCC/NORM::

        T = 1 / (R*sqrt(2p/3) + t_RTO * 3*sqrt(3p/8) * p * (1 + 32 p^2))

    with ``R`` the RTT, ``t_RTO = 4R`` by default, and ``T`` in packets
    per the unit of ``R`` (converted here to per-second).  Returns
    ``inf`` when *loss* is zero.
    """
    if loss <= 0.0:
        return float("inf")
    rtt_s = max(rtt_ms, 1e-3) / 1000.0
    rto_s = (4.0 * rtt_ms if rto_ms is None else rto_ms) / 1000.0
    denominator = (
        rtt_s * math.sqrt(2.0 * loss / 3.0)
        + rto_s * 3.0 * math.sqrt(3.0 * loss / 8.0) * loss * (1.0 + 32.0 * loss ** 2)
    )
    return 1.0 / denominator


class TfmccController(_AdaptiveBase):
    """NORM-style TCP-friendly controller tracking the worst receiver.

    Once per feedback window the controller picks the current limiting
    receiver — the one reporting the highest loss (ties broken by RTT)
    — and sets the rate to the TCP throughput equation evaluated at
    that receiver's ``(loss, RTT)``, discounted by ``target_loss``
    headroom.  While no receiver reports loss (and no NACKs were
    observed) the rate climbs multiplicatively by ``increase_factor``
    per window towards the configured ceiling, mimicking TFMCC's
    slow-start-like probing.
    """

    name = CC_TFMCC

    def __init__(self, config: CongestionConfig,
                 initial_rate: Optional[float] = None,
                 increase_factor: float = 1.3) -> None:
        super().__init__(config, initial_rate)
        if increase_factor <= 1.0:
            raise ValueError(f"increase_factor must be > 1, got {increase_factor!r}")
        self.increase_factor = increase_factor

    def _adjust(self, now: float, window_nacks: int) -> None:
        limiting = self.worst_receiver()
        if limiting is None or limiting.loss <= 0.0:
            if window_nacks == 0:
                self.set_rate(self.rate * self.increase_factor)
            # NACKs without loss reports: hold the current rate.
            return
        # Steer towards the loss the config tolerates: evaluate the
        # equation at the *excess* over the target so a flow sitting
        # exactly at target_loss holds steady instead of collapsing.
        excess = max(limiting.loss - self.config.target_loss, 1e-4)
        self.set_rate(tcp_friendly_rate(excess, limiting.rtt_ms))


def controller_for(config: CongestionConfig,
                   initial_rate: Optional[float] = None) -> CongestionController:
    """Instantiate the controller the config names."""
    if config.controller == CC_NONE:
        return NoneCc()
    if config.controller == CC_AIMD:
        return AimdController(config, initial_rate)
    if config.controller == CC_TFMCC:
        return TfmccController(config, initial_rate)
    raise ValueError(f"unknown congestion controller {config.controller!r}")
