"""Congestion control for the RRMP sender (closed-loop rate adaptation).

The paper's buffer-quota argument (§3.2: ~C long-term copies per region
suffice) holds only while senders do not outrun the recovery machinery;
the ``overload_onset`` scenario documents the collapse when they do.
This package closes the loop, in the spirit of NORM's TCP-friendly
multicast congestion control (TFMCC):

* :mod:`repro.cc.controller` — the :class:`CongestionController`
  protocol and its implementations: :class:`NoneCc` (open loop,
  byte-identical to the historical sender), :class:`TfmccController`
  (equation-based rate from the worst receiver's loss/RTT feedback) and
  :class:`AimdController` (additive-increase / multiplicative-decrease
  baseline);
* :mod:`repro.cc.feedback` — receiver-side periodic
  :class:`~repro.protocol.messages.FeedbackReport` unicasts back to the
  sender (armed only when a controller is configured);
* :mod:`repro.cc.driver` — :class:`CongestionDriver`, the clock-driven
  send loop pulling arrivals from a
  :class:`~repro.workloads.traffic.TrafficGenerator` under controller
  credit, plus sender-side feedback/NACK plumbing and adaptive FEC
  parity shifting;
* :mod:`repro.cc.fairness` — a shared-bottleneck duel between two
  competing controllers with Jain's fairness index.

The same driver runs under the simulator and the live asyncio backend
(both satisfy the ``now``/``at`` clock surface).
"""

from repro.cc.controller import (
    AimdController,
    CongestionController,
    NoneCc,
    TfmccController,
    controller_for,
    tcp_friendly_rate,
)
from repro.cc.driver import CongestionDriver
from repro.cc.fairness import FairnessResult, jain_index, run_fairness_duel
from repro.cc.feedback import FeedbackReporter, build_feedback, install_feedback_reporters

__all__ = [
    "AimdController",
    "CongestionController",
    "CongestionDriver",
    "FairnessResult",
    "FeedbackReporter",
    "NoneCc",
    "TfmccController",
    "build_feedback",
    "controller_for",
    "install_feedback_reporters",
    "jain_index",
    "run_fairness_duel",
    "tcp_friendly_rate",
]
