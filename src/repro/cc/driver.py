"""The closed send loop: generator arrivals under controller credit.

:class:`CongestionDriver` replaces the open-loop
``TrafficGenerator.schedule()`` install when a congestion controller is
configured.  Instead of precomputing every send instant, it schedules
one clock event at a time::

    t = generator.next_send(now, controller.send_credit(now))

so each transmission waits for both its offered-load arrival *and* the
controller's rate credit.  After every send the driver re-queries the
controller — rate changes take effect on the very next message.

The driver also owns the sender-side feedback plumbing:

* receiver :class:`~repro.protocol.messages.FeedbackReport` unicasts
  are dispatched through the sender member's ``extra_handlers`` slot;
* observed NACKs reach the controller by chaining the member's
  ``repair_interest_hook`` (preserving the reactive-FEC hook when both
  are active);
* when the sender runs proactive/reactive FEC, the controller's parity
  budget is applied to the encoder before each send (adaptive FEC:
  rising loss shifts parity up and, through the controller's rate law,
  rate down).

It drives any clock with a ``now`` property and an ``at(time, fn)``
method — the simulator and the live backend's ``LiveClock`` both
qualify, so the same controller code paces simulated and real-time
senders.

Trace events: ``cc_send`` (one per paced transmission), ``cc_feedback``
(one per report processed), ``cc_rate_change`` (the controller moved
its inter-send interval) and ``cc_parity_shift`` (adaptive FEC moved
the encoder's parity budget).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cc.controller import CongestionController
from repro.protocol.messages import FeedbackReport


class CongestionDriver:
    """Paces one sender's stream through a congestion controller."""

    def __init__(self, clock, sender, generator,
                 controller: CongestionController,
                 trace=None,
                 on_complete: Optional[Callable[[float], None]] = None) -> None:
        self.clock = clock
        self.sender = sender
        self.generator = generator
        self.controller = controller
        self.trace = trace
        self.on_complete = on_complete
        self.sent = 0
        self.done = False
        self._stopped = False
        self._base_parity = sender.member.config.fec_parity

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install feedback plumbing and schedule the first send."""
        self._install()
        self._schedule_next()

    def stop(self) -> None:
        """Stop pacing: no further sends are scheduled.  Idempotent."""
        self._stopped = True

    def _install(self) -> None:
        member = self.sender.member
        member.extra_handlers[FeedbackReport] = self._on_feedback
        previous = member.repair_interest_hook

        def _observe_nack(seq) -> None:
            # Chain: reactive FEC (or any earlier hook) still fires.
            if previous is not None:
                previous(seq)
            self.controller.on_nack(self.clock.now, seq)

        member.repair_interest_hook = _observe_nack

    # ------------------------------------------------------------------
    # The send loop
    # ------------------------------------------------------------------
    def _schedule_next(self) -> None:
        now = self.clock.now
        credit = self.controller.send_credit(now)
        t = self.generator.next_send(now, credit)
        if t is None:
            self.done = True
            if self.on_complete is not None:
                self.on_complete(now)
            return
        self.clock.at(t if t > now else now, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        now = self.clock.now
        self._apply_parity_budget(now)
        self.sender.multicast()
        self.controller.on_send(now)
        self.sent += 1
        if self.trace is not None:
            self.trace.emit(now, "cc_send", seq=self.sender.max_seq,
                            interval=self.controller.interval())
        self._schedule_next()

    # ------------------------------------------------------------------
    # Feedback and adaptive FEC
    # ------------------------------------------------------------------
    def _on_feedback(self, report: FeedbackReport) -> None:
        now = self.clock.now
        before = self.controller.interval()
        self.controller.on_feedback(now, report)
        after = self.controller.interval()
        if self.trace is not None:
            self.trace.emit(now, "cc_feedback", receiver=report.receiver,
                            loss=report.loss_estimate, rtt=report.rtt_ms)
            if after != before:
                self.trace.emit(now, "cc_rate_change", interval=after,
                                previous=before)

    def _apply_parity_budget(self, now: float) -> None:
        encoder = self.sender.fec
        if encoder is None:
            return
        budget = self.controller.parity_budget(encoder.block_size,
                                               self._base_parity)
        if budget != encoder.parity:
            if self.trace is not None:
                self.trace.emit(now, "cc_parity_shift", parity=budget,
                                previous=encoder.parity)
            encoder.parity = budget
