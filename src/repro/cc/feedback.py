"""Receiver-side feedback: periodic state reports back to the sender.

NORM/TFMCC senders adapt to the *worst* receiver, which requires
hearing from receivers at all.  When (and only when) a congestion
controller is configured, every receiver arms a :class:`FeedbackReporter`
— a periodic task unicasting a
:class:`~repro.protocol.messages.FeedbackReport` with its locally
observed state:

* ``loss_estimate`` — the fraction of the sender's advertised stream
  the receiver has not (yet) delivered.  Recovered messages count as
  delivered, so this is a *backlog* signal: under light load recovery
  catches up and the estimate decays to zero; under overload the
  recovery machinery lags and the estimate grows — exactly the regime
  the controller must throttle.
* ``rtt_ms`` — the receiver's RTT estimate towards the sender (the
  member's ``rtt_to`` surface, i.e. the measured Jacobson/Karels
  estimator when :func:`~repro.protocol.rtt.attach_rtt_estimation` is
  active, the latency oracle otherwise).
* ``max_seq`` / ``received`` — raw counters for observability.

Reports ride the normal unicast path (control wire size, counted in
network stats), so feedback traffic is part of the measured overhead.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.net.topology import NodeId
from repro.protocol.messages import FeedbackReport
from repro.sim import PeriodicTask

#: Reporter start phases are staggered across this many slots so a big
#: region does not synchronize its feedback into one burst per interval.
_PHASE_SLOTS = 8


def build_feedback(member, sender_node: NodeId) -> FeedbackReport:
    """Snapshot *member*'s observed state into a report for the sender."""
    highest = member.gap.highest
    expected = max(highest, 0)
    received = member.gap.received_count
    loss = 0.0 if expected <= 0 else max(0.0, 1.0 - received / expected)
    return FeedbackReport(
        receiver=member.node_id,
        loss_estimate=loss,
        rtt_ms=member.rtt_to(sender_node),
        max_seq=highest,
        received=received,
    )


class FeedbackReporter:
    """Periodically unicast one member's feedback report to the sender."""

    def __init__(self, member, sender_node: NodeId, interval: float) -> None:
        self.member = member
        self.sender_node = sender_node
        self._task = PeriodicTask(member.sim, interval, self.report_now)

    @property
    def running(self) -> bool:
        """Whether the reporter is currently scheduled."""
        return self._task.running

    def start(self, phase: Optional[float] = None) -> None:
        """Begin reporting; *phase* delays the first report."""
        self._task.start(phase)

    def stop(self) -> None:
        """Stop reporting.  Idempotent."""
        self._task.stop()

    def report_now(self) -> None:
        """Send one report immediately (the periodic task's callback)."""
        member = self.member
        if not member.alive:
            self.stop()
            return
        report = build_feedback(member, self.sender_node)
        member.network.unicast(member.node_id, self.sender_node, report)


def install_feedback_reporters(members: Iterable, sender_node: NodeId,
                               interval: float) -> List[FeedbackReporter]:
    """Arm a started reporter on every member except the sender itself.

    Start phases are staggered deterministically by node id so the
    sender's feedback windows see a spread of reports rather than one
    synchronized burst.
    """
    reporters: List[FeedbackReporter] = []
    for member in members:
        if member.node_id == sender_node:
            continue
        reporter = FeedbackReporter(member, sender_node, interval)
        slot = member.node_id % _PHASE_SLOTS
        reporter.start(phase=interval * (slot + 1) / _PHASE_SLOTS)
        reporters.append(reporter)
    return reporters
