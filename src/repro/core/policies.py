"""Buffer-management policy interface and simple baseline policies.

A :class:`BufferPolicy` decides, for one member, which received
messages to keep and when to discard them.  The RRMP member calls into
its policy on every receipt and on every request, and consults it when
answering retransmission requests.  Swapping the policy — two-phase
(the paper's contribution), fixed-time (Bimodal Multicast), stability
detection, repair-server (RMTP-like) or deterministic hashing — is how
the comparison experiments are built.

The policy sees its member through the narrow :class:`BufferHost`
protocol, so policies are unit-testable without a protocol stack.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Protocol, Tuple

from repro.core.buffer import (
    DISCARD_CLOSE,
    DISCARD_FIXED,
    MessageBuffer,
)
from repro.protocol.messages import DataMessage, Seq
from repro.sim import Simulator, TraceLog


class BufferHost(Protocol):
    """What a buffer policy may ask of the member hosting it."""

    node_id: int
    sim: Simulator
    trace: TraceLog

    def region_size(self) -> int:
        """Current size *n* of the member's region (for P = C/n)."""
        ...

    def policy_rng(self, purpose: str) -> random.Random:
        """A deterministic RNG substream for the given purpose."""
        ...


class BufferPolicy(ABC):
    """Decides which messages a member buffers, and for how long.

    Lifecycle: construct, :meth:`bind` to a host, then receive
    ``on_receive`` / ``on_request`` callbacks until :meth:`close`.
    """

    def __init__(self) -> None:
        self.buffer = MessageBuffer()
        self._host: Optional[BufferHost] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, host: BufferHost) -> None:
        """Attach the policy to its hosting member.  Called once."""
        self._host = host

    @property
    def host(self) -> BufferHost:
        """The hosting member (raises if :meth:`bind` was never called)."""
        if self._host is None:
            raise RuntimeError(f"{type(self).__name__} used before bind()")
        return self._host

    def close(self) -> None:
        """Release timers and drop all buffered state (member shutdown)."""
        self.buffer.discard_all(self.host.sim.now, DISCARD_CLOSE)

    # ------------------------------------------------------------------
    # Protocol callbacks
    # ------------------------------------------------------------------
    @abstractmethod
    def on_receive(self, data: DataMessage) -> None:
        """A new message arrived at the member (any path)."""

    def on_request(self, seq: Seq) -> None:
        """A retransmission request for *seq* was observed (feedback)."""

    def on_serve(self, seq: Seq) -> None:
        """The member served a repair for *seq* from this buffer."""

    # ------------------------------------------------------------------
    # Queries used by the member when answering requests
    # ------------------------------------------------------------------
    def has(self, seq: Seq) -> bool:
        """Whether *seq* is currently buffered."""
        return seq in self.buffer

    def get(self, seq: Seq) -> Optional[DataMessage]:
        """The buffered body for *seq*, or ``None``."""
        return self.buffer.data(seq)

    @property
    def occupancy(self) -> int:
        """Number of messages currently buffered."""
        return self.buffer.occupancy

    # ------------------------------------------------------------------
    # Leave-time handoff (§3.2)
    # ------------------------------------------------------------------
    def drain_for_handoff(self) -> List[DataMessage]:
        """Messages the member must hand to peers before leaving.

        Default: nothing (policies without a long-term responsibility
        can simply drop their buffers on leave).
        """
        return []


class NoBufferPolicy(BufferPolicy):
    """Buffers nothing — models SRM's transport level, which relies on
    the application (ALF) to regenerate data (§1).

    Used in tests and as a degenerate baseline: with this policy local
    recovery only succeeds against members that still hold the message
    for application reasons.
    """

    def on_receive(self, data: DataMessage) -> None:
        return None


class NeverDiscardPolicy(BufferPolicy):
    """Buffers every received message for the whole session.

    The conservative strawman from §1 ("have every member buffer a
    message until it has been received by all current members" — and
    beyond); also models an RMTP repair server's whole-file buffering
    when installed only on designated servers.
    """

    def on_receive(self, data: DataMessage) -> None:
        now = self.host.sim.now
        if data.seq in self.buffer:
            return
        self.buffer.add(data, now)
        self.host.trace.emit(now, "buffer_add", node=self.host.node_id, seq=data.seq)


class FixedTimePolicy(BufferPolicy):
    """Buffer each message for a fixed duration, then discard.

    The Bimodal Multicast baseline (§2: "the Bimodal Multicast protocol
    uses a simple buffering policy in which each member buffers messages
    for a fixed amount of time").  Insensitive to how many members still
    need the message — the contrast that motivates §3.1.
    """

    def __init__(self, hold_time: float) -> None:
        super().__init__()
        if hold_time <= 0:
            raise ValueError(f"hold_time must be > 0, got {hold_time!r}")
        self.hold_time = hold_time
        self._expiries: List[Tuple[Seq, object]] = []

    def on_receive(self, data: DataMessage) -> None:
        now = self.host.sim.now
        if data.seq in self.buffer:
            return
        self.buffer.add(data, now)
        self.host.trace.emit(now, "buffer_add", node=self.host.node_id, seq=data.seq)
        event = self.host.sim.after(self.hold_time, self._expire, data.seq)
        self._expiries.append((data.seq, event))

    def _expire(self, seq: Seq) -> None:
        entry = self.buffer.discard(seq, self.host.sim.now, DISCARD_FIXED)
        if entry is not None:
            self.host.trace.emit(
                self.host.sim.now,
                "buffer_discard",
                node=self.host.node_id,
                seq=seq,
                reason=DISCARD_FIXED,
                duration=self.host.sim.now - entry.receive_time,
            )

    def close(self) -> None:
        for _seq, event in self._expiries:
            event.cancel()  # type: ignore[attr-defined]
        self._expiries.clear()
        super().close()
