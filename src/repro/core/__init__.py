"""The paper's primary contribution (system S4 in DESIGN.md).

Two-phase buffer management for RRMP:

* :class:`TwoPhaseBufferPolicy` — feedback-based short-term buffering
  (§3.1) composed with randomized long-term buffering (§3.2);
* :class:`SearchCoordinator` — the randomized search for bufferers that
  answers remote requests for already-discarded messages (§3.3);
* :func:`plan_handoff` — long-term buffer transfer on graceful leave;
* the :class:`BufferPolicy` interface plus simple baselines
  (fixed-time, never-discard, no-buffer) used in comparisons.
"""

from repro.core.buffer import (
    DISCARD_CLOSE,
    DISCARD_FIXED,
    DISCARD_HANDOFF,
    DISCARD_IDLE,
    DISCARD_STABLE,
    DISCARD_TTL,
    BufferEntry,
    BufferRecord,
    MessageBuffer,
)
from repro.core.handoff import handoff_load, plan_handoff
from repro.core.long_term import RandomizedLongTermSelector, long_term_probability
from repro.core.manager import TwoPhaseBufferPolicy
from repro.core.policies import (
    BufferHost,
    BufferPolicy,
    FixedTimePolicy,
    NeverDiscardPolicy,
    NoBufferPolicy,
)
from repro.core.search import SearchCoordinator, SearchHost
from repro.core.short_term import FeedbackIdleTracker

__all__ = [
    "BufferEntry",
    "BufferHost",
    "BufferPolicy",
    "BufferRecord",
    "DISCARD_CLOSE",
    "DISCARD_FIXED",
    "DISCARD_HANDOFF",
    "DISCARD_IDLE",
    "DISCARD_STABLE",
    "DISCARD_TTL",
    "FeedbackIdleTracker",
    "FixedTimePolicy",
    "MessageBuffer",
    "NeverDiscardPolicy",
    "NoBufferPolicy",
    "RandomizedLongTermSelector",
    "SearchCoordinator",
    "SearchHost",
    "TwoPhaseBufferPolicy",
    "handoff_load",
    "long_term_probability",
    "plan_handoff",
]
