"""Graceful-leave buffer handoff (paper §3.2).

"When a receiver voluntarily leaves the group, it transfers each
message in its long-term buffer to a randomly selected receiver in the
region.  This avoids the situation where all long-term bufferers decide
to leave the group, making a message loss unrecoverable."

The policy decides *what* to transfer (:meth:`BufferPolicy.drain_for_handoff`);
this module decides *where*: an independent uniformly-random region
peer per message, so a leaver holding many messages spreads them
rather than dumping its whole buffer on one member.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.protocol.messages import DataMessage, HandoffMessage
from repro.net.topology import NodeId


def plan_handoff(
    leaver: NodeId,
    messages: Sequence[DataMessage],
    region_members: Sequence[NodeId],
    rng: random.Random,
) -> List[Tuple[NodeId, HandoffMessage]]:
    """Assign each drained message to a random surviving region peer.

    Returns ``(target, HandoffMessage)`` pairs; empty when the leaver is
    the last member of its region (nothing can be preserved — callers
    may record a reliability risk in that case).
    """
    peers = [member for member in region_members if member != leaver]
    if not peers:
        return []
    plan: List[Tuple[NodeId, HandoffMessage]] = []
    for data in messages:
        target = rng.choice(peers)
        plan.append((target, HandoffMessage(data=data, from_member=leaver)))
    return plan


def handoff_load(plan: Sequence[Tuple[NodeId, HandoffMessage]]) -> Dict[NodeId, int]:
    """Messages-per-target histogram of a handoff plan (for tests/metrics)."""
    load: Dict[NodeId, int] = {}
    for target, _message in plan:
        load[target] = load.get(target, 0) + 1
    return load
