"""Feedback-based short-term buffering (paper §3.1).

Every member that receives a message initially buffers it.  The member
then uses the retransmission requests it observes as *feedback*: each
request for a message pushes that message's idle deadline back to
``now + T``.  When a message has drawn no request for a full idle
threshold ``T``, it is declared **idle** and handed to the long-term
stage (which keeps it with probability C/n, else discards).

Why this works (§3.1): in a region of *n* members where a fraction *p*
misses the message, each missing member sends one uniformly-random
local request per round, so the probability that a particular holder
receives *no* request in a round is ``(1 - 1/(n-1))^{np} ≈ e^{-p}`` —
silence decays exponentially in the number of members still missing the
message.  The closed form lives in
:func:`repro.analysis.formulas.prob_no_request`; this module implements
the mechanism.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.protocol.messages import Seq
from repro.sim import Simulator, Timer


class FeedbackIdleTracker:
    """Tracks per-message idle timers for the short-term stage.

    Parameters
    ----------
    sim:
        The event engine (supplies time and timer scheduling).
    idle_threshold:
        ``T`` from §3.1 — paper value 40 ms (4 × the maximum RTT).
    on_idle:
        Callback invoked with the sequence number when a tracked
        message has seen no request for ``T`` milliseconds.
    """

    def __init__(
        self,
        sim: Simulator,
        idle_threshold: float,
        on_idle: Callable[[Seq], None],
    ) -> None:
        if idle_threshold <= 0:
            raise ValueError(f"idle_threshold must be > 0, got {idle_threshold!r}")
        self.sim = sim
        self.idle_threshold = idle_threshold
        self._on_idle = on_idle
        self._timers: Dict[Seq, Timer] = {}

    def track(self, seq: Seq) -> None:
        """Begin the idle countdown for a newly-buffered message."""
        if seq in self._timers:
            return
        timer = Timer(self.sim, lambda s=seq: self._fire(s))
        self._timers[seq] = timer
        timer.start(self.idle_threshold)

    def refresh(self, seq: Seq) -> bool:
        """A request for *seq* arrived: push the deadline to now + T.

        Returns ``True`` if *seq* was being tracked.
        """
        timer = self._timers.get(seq)
        if timer is None:
            return False
        timer.start(self.idle_threshold)
        return True

    def untrack(self, seq: Seq) -> None:
        """Stop tracking *seq* (it was discarded or promoted)."""
        timer = self._timers.pop(seq, None)
        if timer is not None:
            timer.cancel()

    def is_tracking(self, seq: Seq) -> bool:
        """Whether *seq* currently has a live idle timer."""
        return seq in self._timers

    @property
    def tracked_count(self) -> int:
        """Number of messages with live idle timers."""
        return len(self._timers)

    def idle_deadline(self, seq: Seq) -> float:
        """Absolute time at which *seq* will be declared idle.

        Raises ``KeyError`` if *seq* is not tracked.
        """
        timer = self._timers[seq]
        deadline = timer.deadline
        if deadline is None:  # pragma: no cover - defensive
            raise KeyError(seq)
        return deadline

    def close(self) -> None:
        """Cancel every idle timer (member shutdown)."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()

    def _fire(self, seq: Seq) -> None:
        self._timers.pop(seq, None)
        self._on_idle(seq)
