"""Per-member message buffer storage.

:class:`MessageBuffer` is the passive store that buffer-management
policies (two-phase, fixed-time, stability-based, …) operate on.  It
tracks, per message, when it was received, when the last request for it
arrived, and whether it has been promoted to long-term; and it keeps a
log of :class:`BufferRecord` entries describing every discard, which is
what the Figure 6 experiment aggregates into "average buffering time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.protocol.messages import DataMessage, Seq


@dataclass
class BufferEntry:
    """Live state of one buffered message at one member.

    ``long_term`` is read-only outside :class:`MessageBuffer`: flipping
    it directly would desynchronize the buffer's long-term index — use
    :meth:`MessageBuffer.promote` / :meth:`MessageBuffer.demote`.
    """

    seq: Seq
    data: DataMessage
    receive_time: float
    last_request_time: Optional[float] = None
    long_term: bool = False
    #: Time of the most recent event that counts as a "use" (receipt,
    #: request, or serving a repair); drives the long-term TTL.
    last_use_time: float = 0.0
    #: Monotonic admission rank assigned by :meth:`MessageBuffer.add`;
    #: orders :meth:`MessageBuffer.long_term_seqs` by insertion.
    order: int = 0

    def __post_init__(self) -> None:
        if self.last_use_time == 0.0:
            self.last_use_time = self.receive_time


@dataclass(frozen=True)
class BufferRecord:
    """One completed buffering episode (message added then discarded)."""

    seq: Seq
    receive_time: float
    discard_time: float
    reason: str
    was_long_term: bool

    @property
    def duration(self) -> float:
        """How long the message occupied the buffer, in ms."""
        return self.discard_time - self.receive_time


#: Discard reasons recorded in :class:`BufferRecord`.
DISCARD_IDLE = "idle"            # went idle, lost the long-term coin flip
DISCARD_TTL = "long-term-ttl"    # long-term entry expired unused
DISCARD_FIXED = "fixed-timeout"  # fixed-time policy expiry
DISCARD_STABLE = "stable"        # stability detector declared it stable
DISCARD_HANDOFF = "handoff"      # transferred to another member on leave
DISCARD_CLOSE = "close"          # simulation/member shutdown


class MessageBuffer:
    """Message store with discard accounting.

    The buffer never decides *when* to discard — that is the policy's
    job — but it centralizes the bookkeeping every policy needs.
    """

    def __init__(self) -> None:
        self._entries: Dict[Seq, BufferEntry] = {}
        self.records: List[BufferRecord] = []
        #: Lazily-maintained index of long-term seqs, so policy
        #: decisions and handoff planning never scan every entry.
        self._long_term: Set[Seq] = set()
        self._next_order = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, seq: Seq) -> bool:
        return seq in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def occupancy(self) -> int:
        """Number of messages currently buffered."""
        return len(self._entries)

    def get(self, seq: Seq) -> Optional[BufferEntry]:
        """The live entry for *seq*, or ``None``."""
        return self._entries.get(seq)

    def data(self, seq: Seq) -> Optional[DataMessage]:
        """The stored message body for *seq*, or ``None``."""
        entry = self._entries.get(seq)
        return entry.data if entry is not None else None

    def seqs(self) -> Iterable[Seq]:
        """Sequence numbers currently buffered (insertion order)."""
        return tuple(self._entries.keys())

    def entries(self) -> Iterable[BufferEntry]:
        """Live entries (insertion order)."""
        return tuple(self._entries.values())

    def long_term_seqs(self) -> Iterable[Seq]:
        """Sequence numbers of entries promoted to long-term.

        Ordered by buffer insertion (matching :meth:`seqs`); costs
        O(k log k) in the number of *long-term* entries, not O(n) in
        the buffer size.
        """
        entries = self._entries
        return tuple(sorted(self._long_term, key=lambda seq: entries[seq].order))

    def is_long_term(self, seq: Seq) -> bool:
        """Whether *seq* is buffered long-term.  O(1)."""
        return seq in self._long_term

    @property
    def long_term_count(self) -> int:
        """Number of long-term entries.  O(1)."""
        return len(self._long_term)

    def check_index(self) -> List[str]:
        """Internal-consistency problems between entries and the
        long-term index (empty when the buffer is healthy).

        O(n); meant for the invariant oracle's end-of-run sweep and the
        property tests, not for protocol hot paths.
        """
        problems: List[str] = []
        for seq, entry in self._entries.items():
            if entry.long_term and seq not in self._long_term:
                problems.append(f"entry {seq} flagged long_term but missing from index")
            if not entry.long_term and seq in self._long_term:
                problems.append(f"entry {seq} in long-term index but not flagged")
            if entry.order > self._next_order:
                problems.append(f"entry {seq} order {entry.order} beyond watermark")
        for seq in self._long_term:
            if seq not in self._entries:
                problems.append(f"long-term index holds discarded seq {seq}")
        orders = [entry.order for entry in self._entries.values()]
        if len(set(orders)) != len(orders):
            problems.append("duplicate admission ranks")
        return problems

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, data: DataMessage, now: float, long_term: bool = False) -> BufferEntry:
        """Store *data*; returns the new (or existing) entry."""
        existing = self._entries.get(data.seq)
        if existing is not None:
            return existing
        self._next_order += 1
        entry = BufferEntry(seq=data.seq, data=data, receive_time=now,
                            long_term=long_term, order=self._next_order)
        self._entries[data.seq] = entry
        if long_term:
            self._long_term.add(data.seq)
        return entry

    def promote(self, seq: Seq) -> Optional[BufferEntry]:
        """Mark *seq* long-term, keeping the index in sync.  O(1).

        Returns the entry, or ``None`` if *seq* is not buffered.
        """
        entry = self._entries.get(seq)
        if entry is None:
            return None
        entry.long_term = True
        self._long_term.add(seq)
        return entry

    def demote(self, seq: Seq) -> Optional[BufferEntry]:
        """Clear the long-term mark on *seq*.  O(1)."""
        entry = self._entries.get(seq)
        if entry is None:
            return None
        entry.long_term = False
        self._long_term.discard(seq)
        return entry

    def discard(self, seq: Seq, now: float, reason: str) -> Optional[BufferEntry]:
        """Remove *seq*, recording a :class:`BufferRecord`.

        Returns the removed entry, or ``None`` if it was not buffered.
        """
        entry = self._entries.pop(seq, None)
        if entry is None:
            return None
        self._long_term.discard(seq)
        self.records.append(
            BufferRecord(
                seq=seq,
                receive_time=entry.receive_time,
                discard_time=now,
                reason=reason,
                was_long_term=entry.long_term,
            )
        )
        return entry

    def discard_all(self, now: float, reason: str = DISCARD_CLOSE) -> List[BufferEntry]:
        """Remove every entry (member shutdown); returns removed entries."""
        removed = []
        for seq in list(self._entries.keys()):
            entry = self.discard(seq, now, reason)
            if entry is not None:
                removed.append(entry)
        return removed

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def durations(self, reason: Optional[str] = None) -> List[float]:
        """Buffering durations of completed episodes, optionally by reason."""
        return [
            record.duration
            for record in self.records
            if reason is None or record.reason == reason
        ]
