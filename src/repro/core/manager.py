"""The two-phase buffer policy — the paper's primary contribution (§3).

:class:`TwoPhaseBufferPolicy` composes the feedback-based short-term
stage (:mod:`repro.core.short_term`) with the randomized long-term stage
(:mod:`repro.core.long_term`):

1. every received message is buffered and its idle timer armed;
2. every observed request for a buffered message refreshes that timer;
3. when the timer fires (no request for ``T`` ms), the member flips a
   coin with probability ``C/n``: heads → the entry is promoted to
   long-term (kept until the optional TTL), tails → discarded;
4. on graceful leave, long-term entries are handed to random peers
   (:meth:`drain_for_handoff`, used by the member's leave path).

Trace records emitted (consumed by experiments and tests):

* ``buffer_idle`` — a message went idle at a member;
* ``long_term_selected`` — the coin flip kept it;
* ``buffer_discard`` — an entry left the buffer (fields: ``reason``,
  ``duration``, ``was_long_term``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.buffer import (
    DISCARD_HANDOFF,
    DISCARD_IDLE,
    DISCARD_TTL,
)
from repro.core.long_term import RandomizedLongTermSelector
from repro.core.policies import BufferHost, BufferPolicy
from repro.core.short_term import FeedbackIdleTracker
from repro.protocol.messages import DataMessage, Seq


class TwoPhaseBufferPolicy(BufferPolicy):
    """Feedback-based short-term + randomized long-term buffering.

    Parameters mirror :class:`repro.protocol.config.RrmpConfig`; the
    policy is usually built via
    :func:`repro.protocol.rrmp.two_phase_policy_factory` so both share
    one config object.
    """

    def __init__(
        self,
        idle_threshold: float = 40.0,
        long_term_c: float = 6.0,
        long_term_ttl: Optional[float] = None,
    ) -> None:
        super().__init__()
        self.idle_threshold = idle_threshold
        self.long_term_c = long_term_c
        self.long_term_ttl = long_term_ttl
        self._short_term: Optional[FeedbackIdleTracker] = None
        self._long_term: Optional[RandomizedLongTermSelector] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, host: BufferHost) -> None:
        super().bind(host)
        self._short_term = FeedbackIdleTracker(
            host.sim, self.idle_threshold, on_idle=self._on_idle
        )
        self._long_term = RandomizedLongTermSelector(
            host.sim,
            host.policy_rng("long-term"),
            expected_bufferers=self.long_term_c,
            ttl=self.long_term_ttl,
            on_expire=self._on_ttl_expired,
        )

    @property
    def short_term(self) -> FeedbackIdleTracker:
        """The idle tracker (raises before :meth:`bind`)."""
        if self._short_term is None:
            raise RuntimeError("TwoPhaseBufferPolicy used before bind()")
        return self._short_term

    @property
    def long_term(self) -> RandomizedLongTermSelector:
        """The long-term selector (raises before :meth:`bind`)."""
        if self._long_term is None:
            raise RuntimeError("TwoPhaseBufferPolicy used before bind()")
        return self._long_term

    def close(self) -> None:
        self.short_term.close()
        self.long_term.close()
        super().close()

    # ------------------------------------------------------------------
    # Protocol callbacks
    # ------------------------------------------------------------------
    def on_receive(self, data: DataMessage) -> None:
        now = self.host.sim.now
        if data.seq in self.buffer:
            return
        self.buffer.add(data, now)
        self.short_term.track(data.seq)
        if self.host.trace.enabled:
            self.host.trace.emit(now, "buffer_add", node=self.host.node_id, seq=data.seq)

    def on_request(self, seq: Seq) -> None:
        entry = self.buffer.get(seq)
        if entry is None:
            return
        now = self.host.sim.now
        entry.last_request_time = now
        entry.last_use_time = now
        if entry.long_term:
            self.long_term.touch(seq)
        else:
            self.short_term.refresh(seq)

    def on_serve(self, seq: Seq) -> None:
        entry = self.buffer.get(seq)
        if entry is None:
            return
        entry.last_use_time = self.host.sim.now
        if entry.long_term:
            self.long_term.touch(seq)

    # ------------------------------------------------------------------
    # Long-term handoff (§3.2)
    # ------------------------------------------------------------------
    def drain_for_handoff(self) -> List[DataMessage]:
        """Remove and return long-term entries for transfer on leave."""
        now = self.host.sim.now
        transferred: List[DataMessage] = []
        for seq in list(self.buffer.long_term_seqs()):
            entry = self.buffer.discard(seq, now, DISCARD_HANDOFF)
            if entry is None:
                continue
            self.long_term.disarm(seq)
            transferred.append(entry.data)
            self._emit_discard(seq, now, DISCARD_HANDOFF, was_long_term=True,
                               duration=now - entry.receive_time)
        return transferred

    def accept_handoff(self, data: DataMessage) -> None:
        """Install a message received via handoff directly as long-term."""
        now = self.host.sim.now
        entry = self.buffer.get(data.seq)
        if entry is None:
            entry = self.buffer.add(data, now, long_term=True)
            self.host.trace.emit(now, "buffer_add", node=self.host.node_id, seq=data.seq)
        else:
            # Already buffered: promote, since the leaver's long-term
            # responsibility transfers to us.
            self.short_term.untrack(data.seq)
        self.buffer.promote(data.seq)
        entry.last_use_time = now
        self.long_term.arm_ttl(data.seq)
        self.host.trace.emit(
            now, "long_term_selected", node=self.host.node_id, seq=data.seq, via="handoff"
        )

    # ------------------------------------------------------------------
    # Internal transitions
    # ------------------------------------------------------------------
    def _on_idle(self, seq: Seq) -> None:
        now = self.host.sim.now
        entry = self.buffer.get(seq)
        if entry is None:  # pragma: no cover - defensive
            return
        trace = self.host.trace
        if trace.enabled:
            trace.emit(now, "buffer_idle", node=self.host.node_id, seq=seq)
        if self.long_term.decide(self.host.region_size()):
            self.buffer.promote(seq)
            entry.last_use_time = now
            self.long_term.arm_ttl(seq)
            if trace.enabled:
                trace.emit(now, "long_term_selected", node=self.host.node_id,
                           seq=seq, via="coin-flip")
        else:
            removed = self.buffer.discard(seq, now, DISCARD_IDLE)
            if removed is not None:
                self._emit_discard(seq, now, DISCARD_IDLE, was_long_term=False,
                                   duration=now - removed.receive_time)

    def _on_ttl_expired(self, seq: Seq) -> None:
        now = self.host.sim.now
        removed = self.buffer.discard(seq, now, DISCARD_TTL)
        if removed is not None:
            self._emit_discard(seq, now, DISCARD_TTL, was_long_term=True,
                               duration=now - removed.receive_time)

    def _emit_discard(
        self, seq: Seq, now: float, reason: str, was_long_term: bool, duration: float
    ) -> None:
        if not self.host.trace.enabled:
            return
        self.host.trace.emit(
            now,
            "buffer_discard",
            node=self.host.node_id,
            seq=seq,
            reason=reason,
            was_long_term=was_long_term,
            duration=duration,
        )
