"""Randomized long-term buffering (paper §3.2).

When a message goes idle, each member *independently* keeps it with
probability ``P = C/n`` (n = region size).  The number of long-term
bufferers in the region is then Binomial(n, C/n) — approximately
Poisson(C) for large n — so the expected count is the constant ``C``
regardless of region size, and the probability that *nobody* keeps the
message is ≈ ``e^{-C}`` (0.25 % at C = 6, the paper's example).

Because the sender streams many messages and every idle message gets an
independent coin flip at every member, the long-term buffering load
spreads evenly across the region instead of concentrating on a repair
server — the load-balancing claim of the paper's conclusion.

This module holds the decision logic and the optional eventual-discard
TTL; :class:`repro.core.manager.TwoPhaseBufferPolicy` wires it to the
buffer.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Optional

from repro.protocol.messages import Seq
from repro.sim import Simulator, Timer


def long_term_probability(expected_bufferers: float, region_size: int) -> float:
    """The per-member keep probability ``P = C/n``, clamped to [0, 1].

    For regions smaller than C every member keeps the message (P = 1);
    an empty or single-member region degenerates to P = min(1, C).
    """
    if expected_bufferers < 0:
        raise ValueError(f"expected_bufferers must be >= 0, got {expected_bufferers!r}")
    if region_size <= 0:
        return 0.0
    return min(1.0, expected_bufferers / region_size)


class RandomizedLongTermSelector:
    """Makes the §3.2 coin flip and manages long-term TTLs.

    Parameters
    ----------
    sim:
        Event engine.
    rng:
        Dedicated RNG substream for the coin flips.
    expected_bufferers:
        ``C``; 0 disables long-term buffering (every idle message is
        discarded).
    ttl:
        Optional eventual discard: a long-term entry unused for *ttl*
        milliseconds is dropped via *on_expire* (§3.2's "eventually even
        a long-term bufferer may decide to discard an idle message").
    on_expire:
        Callback invoked with the sequence number when a TTL fires.
    """

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        expected_bufferers: float,
        ttl: Optional[float] = None,
        on_expire: Optional[Callable[[Seq], None]] = None,
    ) -> None:
        if expected_bufferers < 0:
            raise ValueError(f"expected_bufferers must be >= 0, got {expected_bufferers!r}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"ttl must be > 0 or None, got {ttl!r}")
        self.sim = sim
        self.rng = rng
        self.expected_bufferers = expected_bufferers
        self.ttl = ttl
        self._on_expire = on_expire
        self._ttl_timers: Dict[Seq, Timer] = {}

    def decide(self, region_size: int) -> bool:
        """Coin flip: should this member keep the idle message?"""
        probability = long_term_probability(self.expected_bufferers, region_size)
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self.rng.random() < probability

    # ------------------------------------------------------------------
    # TTL management
    # ------------------------------------------------------------------
    def arm_ttl(self, seq: Seq) -> None:
        """Start (or restart) the unused-entry TTL for *seq*."""
        if self.ttl is None:
            return
        timer = self._ttl_timers.get(seq)
        if timer is None:
            timer = Timer(self.sim, lambda s=seq: self._expire(s))
            self._ttl_timers[seq] = timer
        timer.start(self.ttl)

    def touch(self, seq: Seq) -> None:
        """The entry was used (request served): push its TTL back."""
        if seq in self._ttl_timers:
            self.arm_ttl(seq)

    def disarm(self, seq: Seq) -> None:
        """Cancel the TTL for *seq* (entry handed off or discarded)."""
        timer = self._ttl_timers.pop(seq, None)
        if timer is not None:
            timer.cancel()

    def close(self) -> None:
        """Cancel all TTL timers (member shutdown)."""
        for timer in self._ttl_timers.values():
            timer.cancel()
        self._ttl_timers.clear()

    def _expire(self, seq: Seq) -> None:
        self._ttl_timers.pop(seq, None)
        if self._on_expire is not None:
            self._on_expire(seq)
