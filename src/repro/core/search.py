"""Randomized search for bufferers (paper §3.3).

When a member receives a remote request for a message it has already
discarded, it cannot answer — but *some* region member probably still
buffers the message (≈C long-term bufferers in expectation).  Rather
than multicasting the request — which the paper shows can trigger a
storm of replies when the message has not yet gone idle everywhere —
the member conducts a randomized search:

* forward the request to one uniformly-random region member, arm a
  timer equal to the round-trip time to it;
* a contacted member that still buffers the message unicasts the repair
  to the downstream requester(s) and regionally multicasts "I have the
  message", terminating every search for that message;
* a contacted member that also discarded the message *joins* the
  search, so the number of active searchers grows over time;
* a contacted member that never received the message records the
  waiters and starts its own loss recovery (footnote 4);
* on timeout, each searcher re-forwards to a fresh random member.

:class:`SearchCoordinator` holds a member's active searches; the member
forwards protocol messages into it and supplies side effects through
the narrow :class:`SearchHost` protocol.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple

from repro.protocol.messages import SearchRequest, Seq
from repro.sim import Simulator, Timer, TraceLog


class SearchHost(Protocol):
    """What the search coordinator may ask of its hosting member."""

    node_id: int
    sim: Simulator
    trace: TraceLog

    def region_member_ids(self) -> Sequence[int]:
        """Current members of the host's region (including the host)."""
        ...

    def send_search_request(self, dst: int, request: SearchRequest) -> None:
        """Forward a search hop to *dst*."""
        ...

    def rtt_to(self, dst: int) -> float:
        """Round-trip estimate to *dst* (drives the retry timer)."""
        ...

    def search_rng(self) -> random.Random:
        """Deterministic RNG substream for target selection."""
        ...


class _SearchProcess:
    """One member's participation in the search for one message."""

    def __init__(
        self,
        coordinator: "SearchCoordinator",
        seq: Seq,
        waiters: Set[int],
    ) -> None:
        self.coordinator = coordinator
        self.seq = seq
        self.waiters = set(waiters)
        self.rounds = 0
        self.started_at = coordinator.host.sim.now
        self._timer = Timer(coordinator.host.sim, self._on_timeout)
        self._stopped = False

    def run_round(self) -> None:
        """Forward the request to a fresh random member and arm the timer."""
        if self._stopped:
            return
        host = self.coordinator.host
        candidates = [m for m in host.region_member_ids() if m != host.node_id]
        if not candidates:
            # Nobody to ask: the search idles; a later regional event
            # (repair arrival) resolves the waiters instead.
            return
        limit = self.coordinator.max_rounds
        if limit is not None and self.rounds >= limit:
            rounds = self.rounds
            self.coordinator._given_up.add(self.seq)
            self.coordinator._finish(self.seq)
            host.trace.emit(host.sim.now, "search_abandoned",
                            node=host.node_id, seq=self.seq, rounds=rounds)
            return
        self.rounds += 1
        target = self.coordinator.rng.choice(candidates)
        request = SearchRequest(
            seq=self.seq, waiters=tuple(sorted(self.waiters)), forwarder=host.node_id
        )
        host.trace.emit(host.sim.now, "search_forwarded",
                        node=host.node_id, seq=self.seq, target=target, round=self.rounds)
        host.send_search_request(target, request)
        self._timer.start(host.rtt_to(target) * self.coordinator.timer_factor)

    def stop(self) -> None:
        """Terminate this member's participation."""
        self._stopped = True
        self._timer.cancel()

    def _on_timeout(self) -> None:
        self.run_round()


class SearchCoordinator:
    """Manages all active bufferer searches at one member."""

    def __init__(
        self,
        host: SearchHost,
        timer_factor: float = 1.0,
        max_rounds: Optional[int] = None,
    ) -> None:
        self.host = host
        self.timer_factor = timer_factor
        self.max_rounds = max_rounds
        self.rng = host.search_rng()
        self._active: Dict[Seq, _SearchProcess] = {}
        #: Messages whose search this member already abandoned after
        #: ``max_rounds`` rounds.  Without this memory, two members that
        #: both discarded a vanished message re-seed each other's search
        #: forever: A's request makes B join, B's request makes A rejoin
        #: right after A abandoned — a collective livelock the per-process
        #: round limit cannot see (found by ``validate fuzz``).  Only
        #: populated when ``max_rounds`` is finite, so the default
        #: unbounded configuration behaves exactly as before.
        self._given_up: Set[Seq] = set()

    # ------------------------------------------------------------------
    # Entry points called by the member
    # ------------------------------------------------------------------
    def begin(self, seq: Seq, waiters: Sequence[int]) -> None:
        """Start (or extend) the search for *seq* on behalf of *waiters*.

        Idempotent per message: if the member is already searching, the
        new waiters are merged and the current round keeps running.
        """
        process = self._active.get(seq)
        if process is not None:
            process.waiters.update(waiters)
            return
        if seq in self._given_up:
            # This member already searched to its round limit and gave
            # up; re-joining on a peer's request would defeat the limit.
            return
        process = _SearchProcess(self, seq, set(waiters))
        self._active[seq] = process
        self.host.trace.emit(
            self.host.sim.now,
            "search_joined",
            node=self.host.node_id,
            seq=seq,
            waiters=tuple(sorted(process.waiters)),
        )
        process.run_round()

    def on_have_reply(self, seq: Seq) -> None:
        """A bufferer announced itself: stop searching for *seq*."""
        self._finish(seq)

    def resolve(self, seq: Seq) -> Tuple[int, ...]:
        """The member itself obtained the message for *seq*.

        Stops the search and returns the waiters that still need the
        repair (the member serves them directly).
        """
        # Receiving the message resets the give-up memory: if the member
        # buffers and later re-discards it, a fresh search is legitimate
        # because the regional buffer state has genuinely changed.
        self._given_up.discard(seq)
        process = self._active.get(seq)
        if process is None:
            return ()
        waiters = tuple(sorted(process.waiters))
        self._finish(seq)
        return waiters

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_searching(self, seq: Seq) -> bool:
        """Whether a search for *seq* is active at this member."""
        return seq in self._active

    def waiters_for(self, seq: Seq) -> Set[int]:
        """Downstream waiters attached to the active search for *seq*."""
        process = self._active.get(seq)
        return set(process.waiters) if process is not None else set()

    def active_seqs(self) -> List[Seq]:
        """Messages this member is currently searching for."""
        return list(self._active.keys())

    def close(self) -> None:
        """Cancel all searches (member shutdown)."""
        for seq in list(self._active.keys()):
            self._finish(seq)

    def _finish(self, seq: Seq) -> None:
        process = self._active.pop(seq, None)
        if process is not None:
            process.stop()
