"""Block erasure codecs: XOR single-parity and GF(256) Reed-Solomon.

Both codecs are *systematic*: the ``k`` data shards are transmitted
unchanged and ``r`` parity shards are appended, so receivers that lose
nothing never touch the decoder.  A block of ``k + r`` equal-length
shards survives the erasure of any ``r`` of them:

* :class:`XorCodec` — the classic single-parity code (``r = 1``): the
  parity shard is the XOR of the data shards, and any one missing
  shard is the XOR of the survivors.
* :class:`Gf256Codec` — a Vandermonde-derived Reed-Solomon-style code
  over GF(256) for ``r > 1``.  The encode matrix is a ``(k + r) x k``
  Vandermonde matrix normalised to systematic form (top ``k`` rows =
  identity); any ``k`` of its rows are linearly independent, so any
  ``k`` surviving shards reconstruct the data by inverting one small
  matrix.

The arithmetic is pure Python over the AES-unrelated field
GF(2^8)/0x11d (the polynomial classical RS implementations use), with
log/antilog tables so a multiply is two lookups and an add.  Shards
are ``bytes``; blocks in this reproduction are tens of ~1 KB shards,
well inside pure-Python territory.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

#: The field polynomial x^8 + x^4 + x^3 + x^2 + 1.
_GF_POLY = 0x11D

_GF_EXP: List[int] = [0] * 512
_GF_LOG: List[int] = [0] * 256


def _build_tables() -> None:
    x = 1
    for power in range(255):
        _GF_EXP[power] = x
        _GF_LOG[x] = power
        x <<= 1
        if x & 0x100:
            x ^= _GF_POLY
    for power in range(255, 512):
        _GF_EXP[power] = _GF_EXP[power - 255]


_build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements."""
    if a == 0 or b == 0:
        return 0
    return _GF_EXP[_GF_LOG[a] + _GF_LOG[b]]


def gf_inv(a: int) -> int:
    """Multiplicative inverse (raises on zero)."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _GF_EXP[255 - _GF_LOG[a]]


def gf_pow(a: int, n: int) -> int:
    """Raise a field element to a non-negative integer power."""
    if n == 0:
        return 1
    if a == 0:
        return 0
    return _GF_EXP[(_GF_LOG[a] * n) % 255]


class FecError(Exception):
    """Base class for erasure-coding failures."""


class FecDecodeError(FecError):
    """Raised when too few shards survive to reconstruct a block."""


Matrix = List[List[int]]


def _identity(n: int) -> Matrix:
    return [[1 if row == col else 0 for col in range(n)] for row in range(n)]


def _matmul(a: Matrix, b: Matrix) -> Matrix:
    cols = len(b[0])
    inner = len(b)
    out = [[0] * cols for _ in range(len(a))]
    for i, row in enumerate(a):
        out_row = out[i]
        for j in range(cols):
            acc = 0
            for t in range(inner):
                acc ^= gf_mul(row[t], b[t][j])
            out_row[j] = acc
    return out


def _invert(matrix: Matrix) -> Matrix:
    """Gauss-Jordan inversion over GF(256).

    Raises :class:`FecError` on a singular matrix — which the
    Vandermonde construction guarantees cannot happen for the row
    subsets the codec selects.
    """
    n = len(matrix)
    work = [row[:] for row in matrix]
    out = _identity(n)
    for col in range(n):
        pivot_row = next(
            (row for row in range(col, n) if work[row][col] != 0), None
        )
        if pivot_row is None:
            raise FecError("singular matrix in GF(256) inversion")
        if pivot_row != col:
            work[col], work[pivot_row] = work[pivot_row], work[col]
            out[col], out[pivot_row] = out[pivot_row], out[col]
        inv_pivot = gf_inv(work[col][col])
        work[col] = [gf_mul(value, inv_pivot) for value in work[col]]
        out[col] = [gf_mul(value, inv_pivot) for value in out[col]]
        for row in range(n):
            if row == col or work[row][col] == 0:
                continue
            factor = work[row][col]
            work[row] = [
                value ^ gf_mul(factor, pivot_value)
                for value, pivot_value in zip(work[row], work[col])
            ]
            out[row] = [
                value ^ gf_mul(factor, pivot_value)
                for value, pivot_value in zip(out[row], out[col])
            ]
    return out


def _vandermonde(rows: int, cols: int) -> Matrix:
    """V[i][j] = i^j over GF(256); any square row-subset is invertible."""
    return [[gf_pow(i, j) for j in range(cols)] for i in range(rows)]


def _combine(coefficients: Sequence[int], shards: Sequence[bytes], length: int) -> bytes:
    """Linear combination of shards with the given row of coefficients."""
    out = bytearray(length)
    for coefficient, shard in zip(coefficients, shards):
        if coefficient == 0:
            continue
        if coefficient == 1:
            for index in range(length):
                out[index] ^= shard[index]
        else:
            log_c = _GF_LOG[coefficient]
            for index in range(length):
                byte = shard[index]
                if byte:
                    out[index] ^= _GF_EXP[log_c + _GF_LOG[byte]]
    return bytes(out)


def _validate_data_shards(shards: Sequence[bytes], k: int) -> int:
    if len(shards) != k:
        raise FecError(f"expected {k} data shards, got {len(shards)}")
    if not shards:
        raise FecError("cannot encode an empty block")
    length = len(shards[0])
    for shard in shards:
        if len(shard) != length:
            raise FecError("data shards must all have the same length")
    return length


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(
        len(a), "big"
    )


class XorCodec:
    """Single-parity XOR code: ``r = 1``, recovers any one erasure."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise FecError(f"k must be >= 1, got {k}")
        self.k = k
        self.r = 1

    def encode(self, data_shards: Sequence[bytes]) -> List[bytes]:
        """One parity shard: the XOR of the *k* data shards."""
        length = _validate_data_shards(data_shards, self.k)
        parity = bytes(length)
        for shard in data_shards:
            parity = _xor_bytes(parity, shard)
        return [parity]

    def decode(self, shards: Sequence[Optional[bytes]]) -> List[bytes]:
        """Reconstruct the *k* data shards from ``k + 1`` slots.

        ``shards[i] is None`` marks an erasure.  At most one slot may
        be missing; two erasures exceed this code and raise
        :class:`FecDecodeError`.
        """
        if len(shards) != self.k + 1:
            raise FecError(f"expected {self.k + 1} slots, got {len(shards)}")
        missing = [index for index, shard in enumerate(shards) if shard is None]
        if len(missing) > 1:
            raise FecDecodeError(
                f"{len(missing)} erasures exceed single-parity capacity"
            )
        data = list(shards[: self.k])
        if not missing or missing[0] == self.k:
            return data  # type: ignore[return-value] — data all present
        present = [shard for shard in shards if shard is not None]
        recovered = present[0]
        for shard in present[1:]:
            recovered = _xor_bytes(recovered, shard)
        data[missing[0]] = recovered
        return data  # type: ignore[return-value]


class Gf256Codec:
    """Systematic Vandermonde Reed-Solomon-style code over GF(256)."""

    def __init__(self, k: int, r: int) -> None:
        if k < 1:
            raise FecError(f"k must be >= 1, got {k}")
        if r < 1:
            raise FecError(f"r must be >= 1, got {r}")
        if k + r > 256:
            raise FecError(f"k + r must be <= 256 for GF(256), got {k + r}")
        self.k = k
        self.r = r
        vandermonde = _vandermonde(k + r, k)
        top_inverse = _invert([row[:] for row in vandermonde[:k]])
        #: (k + r) x k systematic encode matrix: rows 0..k-1 are the
        #: identity, rows k..k+r-1 generate the parity shards.  Any k
        #: rows are independent because they equal a k x k Vandermonde
        #: submatrix times the fixed invertible ``top_inverse``.
        self.matrix = _matmul(vandermonde, top_inverse)

    def encode(self, data_shards: Sequence[bytes]) -> List[bytes]:
        """The *r* parity shards for one block of *k* data shards."""
        length = _validate_data_shards(data_shards, self.k)
        return [
            _combine(self.matrix[self.k + parity_index], data_shards, length)
            for parity_index in range(self.r)
        ]

    def decode(self, shards: Sequence[Optional[bytes]]) -> List[bytes]:
        """Reconstruct the *k* data shards from ``k + r`` slots.

        ``shards[i] is None`` marks an erasure; any *k* surviving
        shards suffice.  Fewer raises :class:`FecDecodeError`.
        """
        if len(shards) != self.k + self.r:
            raise FecError(
                f"expected {self.k + self.r} slots, got {len(shards)}"
            )
        if all(shards[index] is not None for index in range(self.k)):
            return list(shards[: self.k])  # type: ignore[return-value]
        present = [index for index, shard in enumerate(shards) if shard is not None]
        if len(present) < self.k:
            raise FecDecodeError(
                f"only {len(present)} shards survive; need {self.k}"
            )
        use = present[: self.k]
        subinverse = _invert([self.matrix[index][:] for index in use])
        survivors = [shards[index] for index in use]
        length = len(survivors[0])
        for shard in survivors:
            if len(shard) != length:  # pragma: no cover - defensive
                raise FecError("surviving shards must all have the same length")
        data: List[bytes] = []
        for row in range(self.k):
            original = shards[row]
            if original is not None:
                data.append(original)
            else:
                data.append(_combine(subinverse[row], survivors, length))
        return data


Codec = Union[XorCodec, Gf256Codec]


def make_codec(k: int, r: int) -> Codec:
    """The codec for a ``(k, r)`` block: XOR when ``r == 1``, else GF(256).

    Encoder and decoder must call this with identical parameters (both
    derive them from the parity messages on the wire), so the two sides
    always agree on which code generated a block's parity.
    """
    if r == 1:
        return XorCodec(k)
    return Gf256Codec(k, r)
