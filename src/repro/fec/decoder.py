"""Receiver-side FEC block decoder.

:class:`FecBlockDecoder` reassembles blocks from two feeds — the data
messages the member receives (any path: multicast, repair, regional
re-multicast) and the parity messages of the FEC subsystem — and
recovers erased data messages as soon as ``k`` of a block's ``k + r``
shards are present.  Recovery is *eager*: every arrival attempts a
decode, so a gap is usually filled before the member's pull recovery
sends a single request; the member additionally consults
:meth:`recover` right before starting a
:class:`~repro.protocol.recovery.RecoveryProcess`.

The decoder learns a block's composition (its seq list, ``k`` and
``r``) from the first parity message of that block; data shards that
arrive earlier are cached by seq until a parity message claims them.
Blocks whose data fully arrives are retired immediately; the shard
cache is capped (FIFO) so a session whose parity never arrives cannot
grow memory without bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.fec.codec import FecDecodeError, make_codec
from repro.fec.encoder import message_shard, pad_shard, shard_payload
from repro.net.topology import NodeId
from repro.protocol.messages import DataMessage, ParityMessage, Seq


@dataclass
class _BlockState:
    """What the decoder knows about one announced block."""

    block_id: int
    seqs: Tuple[Seq, ...]
    r: int
    sender: NodeId
    #: Parity shards received so far, by parity index.
    parity: Dict[int, bytes] = field(default_factory=dict)

    @property
    def k(self) -> int:
        return len(self.seqs)


class FecBlockDecoder:
    """Per-member erasure-decoding state."""

    def __init__(self, max_cached_shards: int = 65536) -> None:
        if max_cached_shards < 1:
            raise ValueError("max_cached_shards must be >= 1")
        self.max_cached_shards = max_cached_shards
        #: Serialized (unpadded) data shards by seq, insertion-ordered
        #: so the cap evicts oldest-first.
        self._shards: Dict[Seq, bytes] = {}
        self._blocks: Dict[int, _BlockState] = {}
        self._seq_to_block: Dict[Seq, int] = {}
        #: Blocks fully decoded or fully received; further shards for
        #: them are dropped on arrival.
        self._done: Set[int] = set()
        #: Messages reconstructed by decoding, ever (diagnostics).
        self.recovered_count = 0

    # ------------------------------------------------------------------
    # Feeds
    # ------------------------------------------------------------------
    def on_data(self, data: DataMessage) -> List[DataMessage]:
        """Record a received data message; returns any decode it enabled."""
        seq = data.seq
        block_id = self._seq_to_block.get(seq)
        if block_id in self._done or seq in self._shards:
            return []
        self._shards[seq] = message_shard(data)
        self._evict_over_cap()
        if block_id is None:
            return []
        return self._try_decode(block_id)

    def on_parity(self, parity: ParityMessage) -> List[DataMessage]:
        """Record a parity message; returns any decode it enabled."""
        block_id = parity.block_id
        if block_id in self._done:
            return []
        state = self._blocks.get(block_id)
        if state is None:
            state = _BlockState(
                block_id=block_id,
                seqs=tuple(parity.block_seqs),
                r=parity.r,
                sender=parity.sender,
            )
            self._blocks[block_id] = state
            for seq in state.seqs:
                self._seq_to_block[seq] = block_id
        state.parity.setdefault(parity.index, parity.shard)
        return self._try_decode(block_id)

    def recover(self, seq: Seq) -> List[DataMessage]:
        """Attempt a decode of the block covering *seq* right now.

        The member calls this before starting a pull-recovery process;
        the returned list holds *every* message the decode reconstructs
        (a block decode can fill several gaps at once), so the caller
        must handle all of them, not just *seq*.
        """
        block_id = self._seq_to_block.get(seq)
        if block_id is None or block_id in self._done:
            return []
        return self._try_decode(block_id)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def block_of(self, seq: Seq) -> Optional[int]:
        """The block id covering *seq*, if a parity message announced one."""
        return self._seq_to_block.get(seq)

    @property
    def tracked_blocks(self) -> int:
        """Blocks currently held open (awaiting shards)."""
        return len(self._blocks)

    @property
    def cached_shards(self) -> int:
        """Data shards currently cached."""
        return len(self._shards)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def _try_decode(self, block_id: int) -> List[DataMessage]:
        state = self._blocks.get(block_id)
        if state is None:
            return []
        data_shards = [self._shards.get(seq) for seq in state.seqs]
        missing = [index for index, shard in enumerate(data_shards) if shard is None]
        if not missing:
            self._retire(state)
            return []
        if (state.k - len(missing)) + len(state.parity) < state.k:
            return []  # not enough shards yet; keep waiting
        length = len(next(iter(state.parity.values())))
        shards: List[Optional[bytes]] = [
            pad_shard(shard, length) if shard is not None else None
            for shard in data_shards
        ]
        shards.extend(state.parity.get(index) for index in range(state.r))
        codec = make_codec(state.k, state.r)
        try:
            decoded = codec.decode(shards)
        except FecDecodeError:  # pragma: no cover - guarded by the count check
            return []
        recovered: List[DataMessage] = []
        for index in missing:
            payload = shard_payload(decoded[index])
            message = DataMessage(
                seq=state.seqs[index], sender=state.sender, payload=payload
            )
            self._shards[message.seq] = message_shard(message)
            recovered.append(message)
        self.recovered_count += len(recovered)
        self._retire(state)
        return recovered

    def _retire(self, state: _BlockState) -> None:
        """Drop the shard state of a block that needs no further decoding.

        The seq -> block mapping is kept (one int per seq, like the gap
        tracker's received set) so late duplicates of a retired block's
        shards are recognised and dropped instead of re-cached.
        """
        self._done.add(state.block_id)
        self._blocks.pop(state.block_id, None)
        for seq in state.seqs:
            self._shards.pop(seq, None)

    def _evict_over_cap(self) -> None:
        while len(self._shards) > self.max_cached_shards:
            oldest = next(iter(self._shards))
            del self._shards[oldest]
