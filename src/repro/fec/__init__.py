"""FEC-based repair subsystem (proactive/reactive erasure coding).

The paper's RRMP recovers every loss with a pull epidemic: each miss
costs at least one request/repair round trip, and a regional loss
costs a WAN round trip throttled by λ.  NORM-style *FEC-based repair*
is the standard complement: the sender appends ``r`` parity messages
to every block of ``k`` data messages, and a receiver holding any
``k`` of the ``k + r`` block shards reconstructs the rest locally —
no request, no timer, no WAN crossing.

The subsystem has three layers:

* :mod:`repro.fec.codec` — byte-level erasure codes (XOR single
  parity; systematic Vandermonde Reed-Solomon over GF(256));
* :mod:`repro.fec.encoder` — the sender pipeline that groups messages
  into blocks and emits :class:`~repro.protocol.messages.ParityMessage`
  objects proactively or on demand;
* :mod:`repro.fec.decoder` — the receiver-side block reassembly that
  fills gaps before (or instead of) pull recovery.

Wired into the protocol via ``RrmpConfig(fec_mode=..., fec_block_size=k,
fec_parity=r)``; parity messages flow through the member's regular
two-phase buffer policy, so long-term bufferers serve parity exactly
like data.
"""

from repro.fec.codec import (
    FecDecodeError,
    FecError,
    Gf256Codec,
    XorCodec,
    make_codec,
)
from repro.fec.decoder import FecBlockDecoder
from repro.fec.encoder import (
    FecEncoder,
    decode_payload,
    encode_payload,
    message_shard,
    pad_shard,
    shard_payload,
)

__all__ = [
    "FecBlockDecoder",
    "FecDecodeError",
    "FecEncoder",
    "FecError",
    "Gf256Codec",
    "XorCodec",
    "decode_payload",
    "encode_payload",
    "make_codec",
    "message_shard",
    "pad_shard",
    "shard_payload",
]
