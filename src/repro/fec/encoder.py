"""Sender-side FEC pipeline: group messages into blocks, emit parity.

:class:`FecEncoder` collects the sender's data messages into blocks of
``k``, serializes each message payload into a shard, and produces the
``r`` :class:`~repro.protocol.messages.ParityMessage` objects for a
block either proactively (as soon as the block fills) or on demand
(reactive mode: the first retransmission request the sender observes
for a block triggers its parity).  The sender decides *when* to encode
by calling :meth:`encode_block`; the encoder only tracks block state.

Shard layout
------------
Message payloads have arbitrary (small) sizes, but an erasure code
needs equal-length shards.  Each shard is a 4-byte big-endian length
prefix followed by the serialized payload, zero-padded to the longest
shard of its block.  The parity messages carry the padded shards; the
receiver pads its own copies of the data shards to the same length
(taken from the parity shard) before decoding, and strips the prefix
after reconstruction.

Payload serialization is a deliberately tiny tagged format covering
the types experiments use (``None``, ``bytes``, ``str``, ``int``,
``float``).  Anything else raises ``TypeError`` at *encode* time — the
sender owns its payloads, so an unsupported type is a programming
error, not a runtime condition to paper over.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.fec.codec import make_codec
from repro.net.topology import NodeId
from repro.protocol.messages import DataMessage, ParityMessage, Seq

_TAG_NONE = b"N"
_TAG_BYTES = b"B"
_TAG_STR = b"S"
_TAG_INT = b"I"
_TAG_FLOAT = b"F"


def encode_payload(payload: object) -> bytes:
    """Serialize a message payload to bytes (tagged, invertible)."""
    if payload is None:
        return _TAG_NONE
    if isinstance(payload, bytes):
        return _TAG_BYTES + payload
    if isinstance(payload, str):
        return _TAG_STR + payload.encode("utf-8")
    if isinstance(payload, bool):
        raise TypeError("bool payloads are not FEC-serializable")
    if isinstance(payload, int):
        return _TAG_INT + str(payload).encode("ascii")
    if isinstance(payload, float):
        return _TAG_FLOAT + repr(payload).encode("ascii")
    raise TypeError(
        f"FEC cannot serialize payload of type {type(payload).__name__}; "
        "use None, bytes, str, int or float"
    )


def decode_payload(blob: bytes) -> object:
    """Invert :func:`encode_payload`."""
    tag, body = blob[:1], blob[1:]
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BYTES:
        return body
    if tag == _TAG_STR:
        return body.decode("utf-8")
    if tag == _TAG_INT:
        return int(body.decode("ascii"))
    if tag == _TAG_FLOAT:
        return float(body.decode("ascii"))
    raise ValueError(f"unknown payload tag {tag!r}")


def message_shard(data: DataMessage) -> bytes:
    """The unpadded shard for one data message (length-prefixed payload)."""
    body = encode_payload(data.payload)
    return len(body).to_bytes(4, "big") + body


def pad_shard(shard: bytes, length: int) -> bytes:
    """Zero-pad *shard* to *length* (no-op when already that long)."""
    if len(shard) > length:
        raise ValueError(f"shard of {len(shard)} bytes exceeds block length {length}")
    return shard + bytes(length - len(shard))


def shard_payload(shard: bytes) -> object:
    """Recover the payload from a (possibly padded) shard."""
    body_length = int.from_bytes(shard[:4], "big")
    return decode_payload(shard[4 : 4 + body_length])


class FecEncoder:
    """Groups a sender's message stream into FEC blocks.

    Blocks are sealed when ``block_size`` messages accumulate (or on
    :meth:`flush`, for a burst that ends mid-block — the parity then
    covers just the short block).  Sealed blocks keep their message
    bodies only until :meth:`encode_block` runs, so a long session
    holds at most one block of bodies per un-encoded block in reactive
    mode and none in proactive mode.
    """

    def __init__(self, block_size: int, parity: int, sender: NodeId) -> None:
        if block_size < 1:
            raise ValueError(f"block_size must be >= 1, got {block_size}")
        if parity < 1:
            raise ValueError(f"parity must be >= 1, got {parity}")
        self.block_size = block_size
        self.parity = parity
        self.sender = sender
        self._pending: List[DataMessage] = []
        self._next_block_id = 0
        #: Sealed, not-yet-encoded blocks: id -> message tuple.
        self._sealed: Dict[int, Tuple[DataMessage, ...]] = {}
        #: Every seq ever added -> its block id (current block included).
        self._seq_to_block: Dict[Seq, int] = {}
        self._encoded: Set[int] = set()

    # ------------------------------------------------------------------
    # Block assembly
    # ------------------------------------------------------------------
    def add(self, data: DataMessage) -> Optional[int]:
        """Append one message; returns the block id it completed, if any."""
        self._pending.append(data)
        self._seq_to_block[data.seq] = self._next_block_id
        if len(self._pending) >= self.block_size:
            return self._seal()
        return None

    def flush(self) -> Optional[int]:
        """Seal the current partial block; returns its id (or ``None``)."""
        if not self._pending:
            return None
        return self._seal()

    def _seal(self) -> int:
        block_id = self._next_block_id
        self._sealed[block_id] = tuple(self._pending)
        self._pending = []
        self._next_block_id += 1
        return block_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def block_containing(self, seq: Seq) -> Optional[int]:
        """The *sealed* block covering *seq* (``None`` if unknown/unsealed)."""
        block_id = self._seq_to_block.get(seq)
        if block_id is None or block_id not in self._sealed and block_id not in self._encoded:
            return None
        return block_id

    def is_encoded(self, block_id: int) -> bool:
        """Whether parity for *block_id* has already been produced."""
        return block_id in self._encoded

    def unencoded_blocks(self) -> List[int]:
        """Sealed blocks whose parity has not been produced yet."""
        return sorted(self._sealed)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode_block(self, block_id: int) -> List[ParityMessage]:
        """Produce the parity messages for a sealed block (once).

        Returns an empty list if the block was already encoded or is
        unknown, so callers need no pre-checks against double emission.
        """
        messages = self._sealed.pop(block_id, None)
        if messages is None:
            return []
        self._encoded.add(block_id)
        shards = [message_shard(message) for message in messages]
        length = max(len(shard) for shard in shards)
        padded = [pad_shard(shard, length) for shard in shards]
        codec = make_codec(len(padded), self.parity)
        parity_shards = codec.encode(padded)
        block_seqs = tuple(message.seq for message in messages)
        return [
            ParityMessage(
                block_id=block_id,
                index=index,
                r=self.parity,
                block_seqs=block_seqs,
                shard=shard,
                sender=self.sender,
            )
            for index, shard in enumerate(parity_shards)
        ]
