"""The discrete-event simulation engine.

:class:`Simulator` owns the virtual clock and the event queue.  All of
``repro`` — the network model, the RRMP protocol, the baselines and the
experiment harness — advances time exclusively through this class, which
is what makes every run reproducible from a single seed.

Time is a ``float`` in **milliseconds**, matching the units used in the
paper's evaluation (10 ms intra-region round-trip time, 40 ms idle
threshold).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised on invalid use of the engine (e.g. scheduling in the past)."""


#: Process-wide count of events fired across every Simulator instance.
#: The sweep runner and the benchmark harness read deltas of this to
#: attribute simulation work to individual trials, including trials
#: executed in worker processes.
_total_events_fired = 0


def total_events_fired() -> int:
    """Events fired in this process, across all simulators ever created."""
    return _total_events_fired


class Simulator:
    """A single-threaded discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.after(5.0, fired.append, "a")
    >>> _ = sim.after(1.0, fired.append, "b")
    >>> sim.run()
    6.0
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._seq = 0
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return self._queue.live_count()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute simulated *time*.

        Scheduling exactly at ``now`` is allowed (the event fires before
        time advances); scheduling in the past raises
        :class:`SimulationError`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, which is before now={self._now:.6f}"
            )
        self._seq += 1
        event = Event(time, self._seq, callback, args)
        self._queue.push(event)
        return event

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* *delay* milliseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, callback, *args)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single earliest event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (time does not advance in that case).
        """
        event = self._queue.pop()
        if event is None:
            return False
        global _total_events_fired
        self._now = event.time
        self._events_fired += 1
        _total_events_fired += 1
        event._fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, *until* is reached, or *max_events* fire.

        When *until* is given, time is advanced to exactly *until* even
        if the queue drains earlier, so occupancy probes and time-series
        samples line up across runs.  Returns the final simulated time.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        fired = 0
        try:
            while True:
                if max_events is not None and fired >= max_events:
                    break
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for *duration* milliseconds of simulated time."""
        return self.run(until=self._now + duration, max_events=max_events)

    def drain(self, max_events: int = 10_000_000) -> float:
        """Run until no live events remain.

        *max_events* bounds runaway simulations (e.g. a protocol bug that
        reschedules forever); exceeding it raises :class:`SimulationError`.
        """
        end = self.run(max_events=max_events)
        if self._queue.peek_time() is not None:
            raise SimulationError(f"drain() exceeded max_events={max_events}")
        return end
