"""The discrete-event simulation engine.

:class:`Simulator` owns the virtual clock and the event queue.  All of
``repro`` — the network model, the RRMP protocol, the baselines and the
experiment harness — advances time exclusively through this class, which
is what makes every run reproducible from a single seed.

Time is a ``float`` in **milliseconds**, matching the units used in the
paper's evaluation (10 ms intra-region round-trip time, 40 ms idle
threshold).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue


class SimulationError(RuntimeError):
    """Raised on invalid use of the engine (e.g. scheduling in the past)."""


#: Process-wide count of events fired across every Simulator instance.
#: The sweep runner and the benchmark harness read deltas of this to
#: attribute simulation work to individual trials, including trials
#: executed in worker processes.
_total_events_fired = 0


def total_events_fired() -> int:
    """Events fired in this process, across all simulators ever created."""
    return _total_events_fired


class Simulator:
    """A single-threaded discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.after(5.0, fired.append, "a")
    >>> _ = sim.after(1.0, fired.append, "b")
    >>> sim.run()
    6.0
    >>> fired
    ['b', 'a']
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue = EventQueue()
        self._seq = 0
        self._running = False
        self._events_fired = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (diagnostics)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of live events still queued."""
        return self._queue.live_count()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* at absolute simulated *time*.

        Scheduling exactly at ``now`` is allowed (the event fires before
        time advances); scheduling in the past raises
        :class:`SimulationError`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, which is before now={self._now:.6f}"
            )
        self._seq += 1
        event = Event(time, self._seq, callback, args)
        self._queue.push(event)
        return event

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule *callback(*args)* *delay* milliseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.at(self._now + delay, callback, *args)

    def reserve_seq(self) -> int:
        """Consume and return the next event sequence number.

        Determinism-preserving support for :class:`repro.sim.Timer`'s
        in-place re-arm: a push-back burns a sequence number exactly as
        the cancel-and-reschedule it replaces would have, so same-time
        tie-breaking of every subsequent event is unchanged, and the
        timer's eventual catch-up event (:meth:`at_reserved`) fires in
        precisely the order the rescheduled event would have.
        """
        self._seq += 1
        return self._seq

    def at_reserved(self, time: float, seq: int, callback: Callable[..., None],
                    *args: Any) -> Event:
        """Schedule *callback* at *time* with a previously reserved seq.

        *seq* must come from :meth:`reserve_seq` and be used at most
        once; reusing a live event's seq would break the total order.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.6f}, which is before now={self._now:.6f}"
            )
        event = Event(time, seq, callback, args)
        self._queue.push(event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single earliest event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (time does not advance in that case).
        """
        event = self._queue.pop()
        if event is None:
            return False
        global _total_events_fired
        self._now = event.time
        self._events_fired += 1
        _total_events_fired += 1
        event._fire()
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run until the queue drains, *until* is reached, or *max_events* fire.

        When *until* is given, time is advanced to exactly *until* even
        if the queue drains earlier, so occupancy probes and time-series
        samples line up across runs.  Returns the final simulated time.

        The loop is the simulator's hottest code: it peeks, pops and
        fires against the raw heap directly instead of going through
        :meth:`EventQueue.peek_time` + :meth:`step`, which would walk
        the heap head twice per event.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        queue = self._queue
        # EventQueue.compact() rebuilds this list in place, so the alias
        # stays valid even if a callback's push triggers compaction.
        heap = queue._heap
        heappop = heapq.heappop
        fired = 0
        try:
            while heap:
                event = heap[0]
                if event._cancelled:
                    heappop(heap)
                    queue._dead -= 1
                    continue
                if max_events is not None and fired >= max_events:
                    break
                event_time = event.time
                if until is not None and event_time > until:
                    break
                heappop(heap)
                event._queue = None
                self._now = event_time
                fired += 1
                self._events_fired += 1
                callback, args = event.callback, event.args
                event.callback = None
                event.args = ()
                if callback is not None:
                    callback(*args)
        finally:
            self._running = False
            global _total_events_fired
            _total_events_fired += fired
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_for(self, duration: float, max_events: Optional[int] = None) -> float:
        """Run for *duration* milliseconds of simulated time."""
        return self.run(until=self._now + duration, max_events=max_events)

    def drain(self, max_events: int = 10_000_000) -> float:
        """Run until no live events remain.

        *max_events* bounds runaway simulations (e.g. a protocol bug that
        reschedules forever); exceeding it raises :class:`SimulationError`
        whose message names the remaining live events and the next
        pending deadline, so the runaway source is identifiable.
        """
        end = self.run(max_events=max_events)
        next_time = self._queue.peek_time()
        if next_time is not None:
            raise SimulationError(
                f"drain() exceeded max_events={max_events}: "
                f"{self._queue.live_count()} live events still queued, "
                f"next pending at t={next_time:.6f} (now={self._now:.6f})"
            )
        return end
