"""Structured trace log for simulations.

Protocol components emit trace records (``kind`` plus free-form fields);
metric collectors and tests subscribe to the kinds they care about.
Tracing is how the experiment harness measures quantities the paper
plots — e.g. "search time" is the interval between a ``search_started``
and the matching ``search_served`` record.

The log is deliberately simple: an in-memory list plus synchronous
subscribers.  A 100-member region experiment emits a few thousand
records, so there is no need for anything fancier.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: a timestamp, a kind, and arbitrary fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field access with a default, mirroring ``dict.get``."""
        return self.fields.get(key, default)


Subscriber = Callable[[TraceRecord], None]


class TraceLog:
    """Collects :class:`TraceRecord` objects and fans them out.

    Set ``keep_records=False`` to run in streaming mode (subscribers
    only), which large parameter sweeps use to bound memory.
    """

    def __init__(self, keep_records: bool = True) -> None:
        self.keep_records = keep_records
        self.records: List[TraceRecord] = []
        self._subscribers: List[Subscriber] = []
        self._kind_subscribers: Dict[str, List[Subscriber]] = {}

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an event at simulated *time* with the given *kind*."""
        record = TraceRecord(time, kind, fields)
        if self.keep_records:
            self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
        for subscriber in self._kind_subscribers.get(kind, ()):
            subscriber(record)

    def subscribe(self, subscriber: Subscriber, kind: Optional[str] = None) -> None:
        """Register *subscriber* for every record, or only records of *kind*."""
        if kind is None:
            self._subscribers.append(subscriber)
        else:
            self._kind_subscribers.setdefault(kind, []).append(subscriber)

    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        """Iterate over retained records of the given *kind*."""
        return (record for record in self.records if record.kind == kind)

    def first(self, kind: str) -> Optional[TraceRecord]:
        """Earliest retained record of *kind*, or ``None``."""
        for record in self.records:
            if record.kind == kind:
                return record
        return None

    def count(self, kind: str) -> int:
        """Number of retained records of *kind*."""
        return sum(1 for record in self.records if record.kind == kind)

    def clear(self) -> None:
        """Drop retained records (subscribers stay registered)."""
        self.records.clear()


class NullTraceLog(TraceLog):
    """A trace log that drops everything; used when tracing is disabled.

    Subscribing to a null log is always a mistake — :meth:`emit` never
    fans out, so the subscriber would silently never fire.  That bit
    the invariant oracle once (it "attached" and then observed a
    perfectly clean, perfectly empty run), so :meth:`subscribe` refuses
    instead of accepting a dead registration.
    """

    def __init__(self) -> None:
        super().__init__(keep_records=False)

    def emit(self, time: float, kind: str, **fields: Any) -> None:  # noqa: D102
        return None

    def subscribe(self, subscriber: Subscriber, kind: Optional[str] = None) -> None:
        """Refuse: a NullTraceLog never emits, so no subscriber can fire."""
        raise RuntimeError(
            "cannot subscribe to a NullTraceLog: emit() drops every record, so "
            "the subscriber would never fire; use TraceLog(keep_records=False) "
            "for streaming-only tracing"
        )


def trace_digest(records: Iterable[TraceRecord]) -> str:
    """SHA-256 over the canonical serialization of a trace stream.

    Each record is rendered as one canonical JSON line
    (``{"f": fields, "k": kind, "t": time}`` with sorted keys); the
    digest is stable across process restarts, platforms and Python
    versions, which is what the golden-baseline differential tests
    under ``tests/baselines/`` key on.  Tuples serialize as JSON
    arrays; any non-JSON field value falls back to ``repr``.
    """
    hasher = hashlib.sha256()
    for record in records:
        line = json.dumps(
            {"t": record.time, "k": record.kind, "f": record.fields},
            sort_keys=True,
            separators=(",", ":"),
            default=repr,
        )
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()
