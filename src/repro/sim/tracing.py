"""Structured trace log for simulations.

Protocol components emit trace records (``kind`` plus free-form fields);
metric collectors and tests subscribe to the kinds they care about.
Tracing is how the experiment harness measures quantities the paper
plots — e.g. "search time" is the interval between a ``search_started``
and the matching ``search_served`` record.

The log is deliberately simple: an in-memory list plus synchronous
subscribers.  A 100-member region experiment emits a few thousand
records, so there is no need for anything fancier.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace event: a timestamp, a kind, and arbitrary fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        """Field access with a default, mirroring ``dict.get``."""
        return self.fields.get(key, default)


Subscriber = Callable[[TraceRecord], None]


class TraceLog:
    """Collects :class:`TraceRecord` objects and fans them out.

    Set ``keep_records=False`` to run in streaming mode (subscribers
    only), which large parameter sweeps use to bound memory.

    ``enabled`` is the hot-path guard: it is true whenever an emitted
    record could be observed (records retained, or at least one
    subscriber registered).  Emit sites on hot protocol paths check it
    before building a record, so a run with tracing fully off pays no
    per-event kwargs/record cost.  The flag is an attribute, not a
    constructor snapshot, because subscribers (the invariant oracle,
    the streaming digest) attach after members are built.
    """

    def __init__(self, keep_records: bool = True) -> None:
        self.keep_records = keep_records
        self.records: List[TraceRecord] = []
        self._subscribers: List[Subscriber] = []
        self._kind_subscribers: Dict[str, List[Subscriber]] = {}
        self.enabled = keep_records

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Record an event at simulated *time* with the given *kind*."""
        record = TraceRecord(time, kind, fields)
        if self.keep_records:
            self.records.append(record)
        for subscriber in self._subscribers:
            subscriber(record)
        for subscriber in self._kind_subscribers.get(kind, ()):
            subscriber(record)

    def subscribe(self, subscriber: Subscriber, kind: Optional[str] = None) -> None:
        """Register *subscriber* for every record, or only records of *kind*."""
        if kind is None:
            self._subscribers.append(subscriber)
        else:
            self._kind_subscribers.setdefault(kind, []).append(subscriber)
        self.enabled = True

    def of_kind(self, kind: str) -> Iterator[TraceRecord]:
        """Iterate over retained records of the given *kind*."""
        return (record for record in self.records if record.kind == kind)

    def first(self, kind: str) -> Optional[TraceRecord]:
        """Earliest retained record of *kind*, or ``None``."""
        for record in self.records:
            if record.kind == kind:
                return record
        return None

    def count(self, kind: str) -> int:
        """Number of retained records of *kind*."""
        return sum(1 for record in self.records if record.kind == kind)

    def clear(self) -> None:
        """Drop retained records (subscribers stay registered)."""
        self.records.clear()


class NullTraceLog(TraceLog):
    """A trace log that drops everything; used when tracing is disabled.

    Subscribing to a null log is always a mistake — :meth:`emit` never
    fans out, so the subscriber would silently never fire.  That bit
    the invariant oracle once (it "attached" and then observed a
    perfectly clean, perfectly empty run), so :meth:`subscribe` refuses
    instead of accepting a dead registration.
    """

    def __init__(self) -> None:
        super().__init__(keep_records=False)

    def emit(self, time: float, kind: str, **fields: Any) -> None:  # noqa: D102
        return None

    def subscribe(self, subscriber: Subscriber, kind: Optional[str] = None) -> None:
        """Refuse: a NullTraceLog never emits, so no subscriber can fire."""
        raise RuntimeError(
            "cannot subscribe to a NullTraceLog: emit() drops every record, so "
            "the subscriber would never fire; use TraceLog(keep_records=False) "
            "for streaming-only tracing"
        )


def record_line(record: TraceRecord) -> bytes:
    """The canonical serialization of one record, without the newline.

    One canonical JSON line (``{"f": fields, "k": kind, "t": time}``
    with sorted keys), stable across process restarts, platforms and
    Python versions.  Tuples serialize as JSON arrays; any non-JSON
    field value falls back to ``repr``.  Both :func:`trace_digest` and
    :class:`StreamingTraceDigest` hash exactly these lines, so the two
    digest paths agree byte-for-byte — which is what lets a sharded
    run's merged digest be compared against a serial golden baseline.
    """
    return json.dumps(
        {"t": record.time, "k": record.kind, "f": record.fields},
        sort_keys=True,
        separators=(",", ":"),
        default=repr,
    ).encode("utf-8")


def trace_digest(records: Iterable[TraceRecord]) -> str:
    """SHA-256 over the canonical serialization of a trace stream.

    The batch form: iterates retained records.  Runs too large to
    retain records use :class:`StreamingTraceDigest` instead; both
    produce identical digests for the same record stream (the
    golden-baseline differential tests under ``tests/baselines/``
    key on this canonical form).
    """
    hasher = hashlib.sha256()
    for record in records:
        hasher.update(record_line(record))
        hasher.update(b"\n")
    return hasher.hexdigest()


class StreamingTraceDigest:
    """Incremental SHA-256 over a trace stream, record by record.

    Subscribing this to a ``TraceLog(keep_records=False)`` computes the
    exact digest :func:`trace_digest` would produce over the retained
    records — without holding any of them, which is what lets a
    100k-member run verify its trace digest in O(1) memory::

        digest = StreamingTraceDigest().attach(simulation.trace)
        simulation.run(...)
        assert digest.hexdigest() == expected

    ``update_line`` accepts pre-serialized canonical lines (from
    :func:`record_line`), which the shard-merge path uses to hash
    records that crossed a process boundary as bytes.
    """

    def __init__(self) -> None:
        self._hasher = hashlib.sha256()
        #: Number of records hashed so far.
        self.count = 0

    def attach(self, trace: TraceLog) -> "StreamingTraceDigest":
        """Subscribe to *trace*; returns self for chaining."""
        trace.subscribe(self.update)
        return self

    def update(self, record: TraceRecord) -> None:
        """Hash one record (usable directly as a trace subscriber)."""
        self.update_line(record_line(record))

    def update_line(self, line: bytes) -> None:
        """Hash one pre-serialized canonical record line."""
        self._hasher.update(line)
        self._hasher.update(b"\n")
        self.count += 1

    def hexdigest(self) -> str:
        """The digest over everything hashed so far (non-destructive)."""
        return self._hasher.copy().hexdigest()
