"""Deterministic, named random-number streams.

Every stochastic decision in the reproduction — which neighbour to ask,
whether to send a remote request (probability λ/n), whether to become a
long-term bufferer (probability C/n), the outcome of an IP multicast —
draws from a :class:`RandomStreams` substream identified by a stable
name such as ``("member", 17, "local-recovery")``.

Deriving independent substreams from one master seed has two properties
the experiments rely on:

* **Bit-for-bit reproducibility.**  The same master seed always yields
  the same simulation, regardless of module import order or dict
  iteration order.
* **Decoupling.**  Adding a new consumer of randomness (say, a new
  metric probe that samples) does not perturb the draws seen by existing
  consumers, because streams are independent rather than interleaved.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple, Union

StreamName = Tuple[Union[str, int], ...]


def derive_seed(master_seed: int, name: StreamName) -> int:
    """Derive a 64-bit child seed from *master_seed* and a stream *name*.

    Uses SHA-256 over a canonical encoding, so the mapping is stable
    across Python versions and platforms (unlike ``hash()``).
    """
    hasher = hashlib.sha256()
    hasher.update(str(master_seed).encode("utf-8"))
    for part in name:
        hasher.update(b"\x1f")  # unit separator: ("ab",) != ("a","b")
        hasher.update(type(part).__name__.encode("utf-8"))
        hasher.update(b"=")
        hasher.update(str(part).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class RandomStreams:
    """A factory of independent, deterministically-seeded RNG streams."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[StreamName, random.Random] = {}

    def stream(self, *name: Union[str, int]) -> random.Random:
        """Return the stream for *name*, creating it on first use.

        Repeated calls with the same name return the same
        :class:`random.Random` instance, so a consumer that draws from
        its stream across many events sees one continuous sequence.
        """
        key: StreamName = tuple(name)
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(derive_seed(self.master_seed, key))
            self._streams[key] = stream
        return stream

    def spawn(self, *name: Union[str, int]) -> "RandomStreams":
        """Create a child factory rooted at *name*.

        Handy for giving each repetition of an experiment its own
        namespace: ``streams.spawn("rep", i)``.
        """
        return RandomStreams(derive_seed(self.master_seed, tuple(name)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(master_seed={self.master_seed}, streams={len(self._streams)})"
