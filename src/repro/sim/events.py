"""Event primitives for the discrete-event simulation engine.

An :class:`Event` is a callback scheduled to fire at a simulated time.
Events are totally ordered by ``(time, sequence_number)`` so that two
events scheduled for the same instant fire in the order they were
scheduled, which keeps every simulation run deterministic.

Cancellation is *lazy*: cancelling an event marks it dead but leaves it
in the heap; the engine discards dead events when it pops them.  This
makes :meth:`Event.cancel` O(1), which matters because protocol timers
are cancelled far more often than they fire.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A single scheduled callback.

    Instances are created by the engine (:meth:`repro.sim.Simulator.at` /
    :meth:`repro.sim.Simulator.after`); user code normally only keeps a
    reference in order to :meth:`cancel` it.
    """

    __slots__ = ("time", "seq", "callback", "args", "_cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire.

        An event stops being pending once it fires or is cancelled.
        """
        return not self._cancelled and self.callback is not None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent and O(1)."""
        self._cancelled = True
        # Drop references eagerly so cancelled timers do not pin protocol
        # state (members, buffers) in memory until the heap drains.
        self.callback = None
        self.args = ()

    def _fire(self) -> None:
        """Invoke the callback exactly once.  Engine-internal."""
        callback, args = self.callback, self.args
        self.callback = None
        self.args = ()
        if callback is not None:
            callback(*args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("pending" if self.pending else "fired")
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state})"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    The queue tolerates lazily-cancelled events: :meth:`pop` and
    :meth:`peek_time` transparently skip events whose ``cancel`` method
    has been called.
    """

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Event] = []

    def push(self, event: Event) -> None:
        """Insert *event* into the queue."""
        heapq.heappush(self._heap, event)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def __len__(self) -> int:
        """Number of queued entries, *including* cancelled ones."""
        return len(self._heap)

    def live_count(self) -> int:
        """Number of queued events that have not been cancelled.

        O(n); intended for tests and diagnostics, not hot paths.
        """
        return sum(1 for event in self._heap if not event.cancelled)

    def clear(self) -> None:
        """Drop every queued event."""
        self._heap.clear()
