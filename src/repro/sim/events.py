"""Event primitives for the discrete-event simulation engine.

An :class:`Event` is a callback scheduled to fire at a simulated time.
Events are totally ordered by ``(time, sequence_number)`` so that two
events scheduled for the same instant fire in the order they were
scheduled, which keeps every simulation run deterministic.

Cancellation is *lazy*: cancelling an event marks it dead but leaves it
in the heap; the engine discards dead events when it pops them.  This
makes :meth:`Event.cancel` O(1), which matters because protocol timers
are cancelled far more often than they fire.

To keep a timer-churn-heavy run from dragging a heap full of corpses,
:class:`EventQueue` counts its dead entries and compacts the heap in one
O(n) ``heapify`` pass when they outnumber the live ones
(:data:`COMPACT_MIN_DEAD` guards tiny queues).  Compaction never changes
pop order — the ``(time, seq)`` total order is unaffected — so runs stay
bit-for-bit reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Compaction is considered only once this many dead entries have
#: accumulated; below it the heap is too small for the scan to matter.
COMPACT_MIN_DEAD = 64


class Event:
    """A single scheduled callback.

    Instances are created by the engine (:meth:`repro.sim.Simulator.at` /
    :meth:`repro.sim.Simulator.after`); user code normally only keeps a
    reference in order to :meth:`cancel` it.
    """

    __slots__ = ("time", "seq", "callback", "args", "_cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[..., None]] = callback
        self.args = args
        self._cancelled = False
        self._queue: Optional["EventQueue"] = None

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    @property
    def pending(self) -> bool:
        """Whether the event is still waiting to fire.

        An event stops being pending once it fires or is cancelled.
        """
        return not self._cancelled and self.callback is not None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent and O(1)."""
        if self._cancelled:
            return
        self._cancelled = True
        # Drop references eagerly so cancelled timers do not pin protocol
        # state (members, buffers) in memory until the heap drains.
        self.callback = None
        self.args = ()
        queue = self._queue
        if queue is not None:
            queue._dead += 1

    def _fire(self) -> None:
        """Invoke the callback exactly once.  Engine-internal."""
        callback, args = self.callback, self.args
        self.callback = None
        self.args = ()
        if callback is not None:
            callback(*args)

    def __lt__(self, other: "Event") -> bool:
        # Hot path: called O(log n) times per heap operation.  Chained
        # comparisons avoid building a (time, seq) tuple per call.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("pending" if self.pending else "fired")
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state})"


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects.

    The queue tolerates lazily-cancelled events: :meth:`pop` and
    :meth:`peek_time` transparently skip events whose ``cancel`` method
    has been called, and bulk-compacts the heap when dead entries
    dominate it.
    """

    __slots__ = ("_heap", "_dead")

    def __init__(self) -> None:
        self._heap: List[Event] = []
        #: Cancelled events still sitting in the heap.  Maintained by
        #: Event.cancel (increment) and the skip paths (decrement).
        self._dead = 0

    def push(self, event: Event) -> None:
        """Insert *event* into the queue."""
        event._queue = self
        if self._dead >= COMPACT_MIN_DEAD and self._dead * 2 >= len(self._heap):
            self.compact()
        heapq.heappush(self._heap, event)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or ``None`` if empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)
            if not event._cancelled:
                # Detach so a later cancel() of the fired event cannot
                # disturb this queue's dead-entry accounting.
                event._queue = None
                return event
            self._dead -= 1
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest live event, if any."""
        heap = self._heap
        while heap and heap[0]._cancelled:
            heapq.heappop(heap)
            self._dead -= 1
        return heap[0].time if heap else None

    def compact(self) -> None:
        """Drop every cancelled entry in one O(n) pass and re-heapify.

        Pop order is unaffected: live events keep their ``(time, seq)``
        total order.  Called automatically from :meth:`push` when dead
        entries reach half the heap; harmless to call at any time.
        """
        if self._dead == 0:
            return
        # In-place rebuild: the engine's run loop holds an alias to the
        # heap list, so the list object itself must survive compaction.
        heap = self._heap
        heap[:] = [event for event in heap if not event._cancelled]
        heapq.heapify(heap)
        self._dead = 0

    def __len__(self) -> int:
        """Number of queued entries, *including* cancelled ones."""
        return len(self._heap)

    @property
    def dead_count(self) -> int:
        """Cancelled events still occupying heap slots (diagnostics)."""
        return self._dead

    def live_count(self) -> int:
        """Number of queued events that have not been cancelled.

        O(1): the queue tracks its dead entries.
        """
        return len(self._heap) - self._dead

    def clear(self) -> None:
        """Drop every queued event."""
        for event in self._heap:
            event._queue = None
        self._heap.clear()
        self._dead = 0
