"""Restartable timers and periodic tasks on top of the event engine.

RRMP is timer-heavy: every in-flight recovery keeps a per-round
retransmission timer, every buffered message keeps an idle timer that is
pushed back each time a request arrives, and the baselines run periodic
gossip.  :class:`Timer` and :class:`PeriodicTask` capture those two
patterns once so protocol code never manipulates raw events.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class Timer:
    """A one-shot timer that can be (re)started and cancelled.

    Restarting an armed timer replaces the previous deadline, which is
    exactly the semantics of the paper's *idle threshold*: each
    retransmission request pushes the discard deadline back to
    ``now + T``.

    Re-arming to a **later** deadline — the overwhelmingly common case,
    since every push-back moves the deadline forward — is done *in
    place*: the timer records the new deadline (and reserves the event
    sequence number a reschedule would have consumed, keeping same-time
    tie-breaking bit-identical) and leaves its scheduled event where it
    is.  When the stale event fires early, the timer notices the
    pushed-back deadline and schedules one catch-up event at the true
    deadline under the reserved seq.  A burst of *k* refreshes
    therefore costs *k* field writes plus at most one extra heap
    operation, instead of *k* cancelled :class:`Event` allocations
    sitting in the engine's heap.  Re-arming to an equal-or-earlier
    deadline falls back to cancel + reschedule (the heaped event would
    fire too late, or in the wrong same-time order, otherwise).
    """

    __slots__ = ("_sim", "_callback", "_event", "_deadline", "_reserved_seq")

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None
        self._deadline = 0.0
        self._reserved_seq = 0

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._event is not None and self._event.pending

    @property
    def deadline(self) -> Optional[float]:
        """Absolute firing time if armed, else ``None``."""
        if self.armed:
            return self._deadline
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire *delay* ms from now."""
        sim = self._sim
        deadline = sim.now + delay
        event = self._event
        if event is not None and event.pending:
            if deadline > event.time:
                # Push-back: keep the scheduled event, just move the
                # logical deadline.  _fire() re-checks before invoking.
                self._deadline = deadline
                self._reserved_seq = sim.reserve_seq()
                return
            event.cancel()
        self._deadline = deadline
        new_event = sim.after(delay, self._fire)
        self._event = new_event
        self._reserved_seq = new_event.seq

    def cancel(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        deadline = self._deadline
        if deadline > self._sim.now:
            # The deadline was pushed back after this event was heaped:
            # schedule the single catch-up event at the true deadline,
            # under the seq reserved by the most recent push-back so it
            # fires exactly where the rescheduled event would have.
            self._event = self._sim.at_reserved(deadline, self._reserved_seq, self._fire)
            return
        self._event = None
        self._callback()


class PeriodicTask:
    """Invoke a callback every *interval* ms until stopped.

    Used by the stability-detection baseline (history-digest gossip), the
    gossip failure detector (heartbeats) and the metrics occupancy
    probes.  The first invocation happens ``phase`` ms after
    :meth:`start` (default: one full interval).
    """

    __slots__ = ("_sim", "_callback", "interval", "_event", "_stopped")

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], None]) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._sim = sim
        self._callback = callback
        self.interval = interval
        self._event: Optional[Event] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        """Whether the task is currently scheduled."""
        return not self._stopped

    def start(self, phase: Optional[float] = None) -> None:
        """Begin ticking.  *phase* delays the first tick (default: interval)."""
        self.stop()
        self._stopped = False
        first = self.interval if phase is None else phase
        self._event = self._sim.after(first, self._tick)

    def stop(self) -> None:
        """Stop ticking.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        # Re-arm before invoking the callback so the callback may call
        # stop() to terminate the task.
        self._event = self._sim.after(self.interval, self._tick)
        self._callback()


def call_repeatedly(
    sim: Simulator,
    interval: float,
    callback: Callable[..., None],
    *args: Any,
    phase: Optional[float] = None,
) -> PeriodicTask:
    """Convenience wrapper: build and start a :class:`PeriodicTask`."""
    task = PeriodicTask(sim, interval, lambda: callback(*args))
    task.start(phase=phase)
    return task
