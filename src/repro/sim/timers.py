"""Restartable timers and periodic tasks on top of the event engine.

RRMP is timer-heavy: every in-flight recovery keeps a per-round
retransmission timer, every buffered message keeps an idle timer that is
pushed back each time a request arrives, and the baselines run periodic
gossip.  :class:`Timer` and :class:`PeriodicTask` capture those two
patterns once so protocol code never manipulates raw events.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Simulator
from repro.sim.events import Event


class Timer:
    """A one-shot timer that can be (re)started and cancelled.

    Restarting an armed timer cancels the previous deadline, which is
    exactly the semantics of the paper's *idle threshold*: each
    retransmission request pushes the discard deadline back to
    ``now + T``.
    """

    __slots__ = ("_sim", "_callback", "_event")

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._event: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._event is not None and self._event.pending

    @property
    def deadline(self) -> Optional[float]:
        """Absolute firing time if armed, else ``None``."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def start(self, delay: float) -> None:
        """Arm (or re-arm) the timer to fire *delay* ms from now."""
        self.cancel()
        self._event = self._sim.after(delay, self._fire)

    def cancel(self) -> None:
        """Disarm the timer if armed.  Idempotent."""
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()


class PeriodicTask:
    """Invoke a callback every *interval* ms until stopped.

    Used by the stability-detection baseline (history-digest gossip), the
    gossip failure detector (heartbeats) and the metrics occupancy
    probes.  The first invocation happens ``phase`` ms after
    :meth:`start` (default: one full interval).
    """

    __slots__ = ("_sim", "_callback", "interval", "_event", "_stopped")

    def __init__(self, sim: Simulator, interval: float, callback: Callable[[], None]) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval!r}")
        self._sim = sim
        self._callback = callback
        self.interval = interval
        self._event: Optional[Event] = None
        self._stopped = True

    @property
    def running(self) -> bool:
        """Whether the task is currently scheduled."""
        return not self._stopped

    def start(self, phase: Optional[float] = None) -> None:
        """Begin ticking.  *phase* delays the first tick (default: interval)."""
        self.stop()
        self._stopped = False
        first = self.interval if phase is None else phase
        self._event = self._sim.after(first, self._tick)

    def stop(self) -> None:
        """Stop ticking.  Idempotent."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _tick(self) -> None:
        if self._stopped:
            return
        # Re-arm before invoking the callback so the callback may call
        # stop() to terminate the task.
        self._event = self._sim.after(self.interval, self._tick)
        self._callback()


def call_repeatedly(
    sim: Simulator,
    interval: float,
    callback: Callable[..., None],
    *args: Any,
    phase: Optional[float] = None,
) -> PeriodicTask:
    """Convenience wrapper: build and start a :class:`PeriodicTask`."""
    task = PeriodicTask(sim, interval, lambda: callback(*args))
    task.start(phase=phase)
    return task
