"""Discrete-event simulation substrate (system S1 in DESIGN.md).

Everything in ``repro`` runs on this engine: a millisecond-resolution
virtual clock (:class:`Simulator`), lazily-cancellable events, protocol
timers (:class:`Timer`, :class:`PeriodicTask`), deterministic named RNG
streams (:class:`RandomStreams`) and a structured trace log
(:class:`TraceLog`).
"""

from repro.sim.engine import SimulationError, Simulator, total_events_fired
from repro.sim.events import Event, EventQueue
from repro.sim.randomness import RandomStreams, derive_seed
from repro.sim.timers import PeriodicTask, Timer, call_repeatedly
from repro.sim.tracing import (
    NullTraceLog,
    StreamingTraceDigest,
    TraceLog,
    TraceRecord,
    record_line,
    trace_digest,
)

__all__ = [
    "Event",
    "EventQueue",
    "NullTraceLog",
    "PeriodicTask",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "StreamingTraceDigest",
    "Timer",
    "TraceLog",
    "TraceRecord",
    "call_repeatedly",
    "derive_seed",
    "record_line",
    "total_events_fired",
    "trace_digest",
]
