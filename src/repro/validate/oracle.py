"""The runtime invariant oracle.

:class:`InvariantOracle` subscribes to a simulation's
:class:`~repro.sim.tracing.TraceLog` and feeds every record to the
protocol invariants of :mod:`repro.validate.invariants` while the run
executes; :meth:`finish` then sweeps live member state (buffers, gap
trackers, recovery processes) for the end-of-run checks.  Attach it to
any :class:`~repro.protocol.rrmp.RrmpSimulation` — directly, via
``MeasurementSpec(oracle=True)``, or through the ``validate`` CLI::

    oracle = InvariantOracle().attach(simulation)
    simulation.run(duration=...)
    violations = oracle.finish()

The oracle is an observer: it never schedules events, never draws from
an RNG stream, and never mutates protocol state, so an oracle-carrying
run is event-for-event identical to the same run without it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.sim.tracing import NullTraceLog, TraceRecord
from repro.validate.invariants import (
    EndContext,
    Invariant,
    Violation,
    default_invariants,
)

#: Stop *storing* violations beyond this many (they are still counted);
#: a systematically broken run would otherwise hoard memory.
MAX_STORED_VIOLATIONS = 200


class InvariantOracle:
    """Checks protocol invariants against one simulation run."""

    def __init__(self, invariants: Optional[Sequence[Invariant]] = None) -> None:
        self._invariants: List[Invariant] = list(
            invariants if invariants is not None else default_invariants()
        )
        for invariant in self._invariants:
            invariant.bind(self)
        self._by_kind: Dict[str, List[Invariant]] = {}
        for invariant in self._invariants:
            for kind in invariant.kinds:
                self._by_kind.setdefault(kind, []).append(invariant)
        self.simulation = None
        self.records_checked = 0
        self.violation_count = 0
        self._violations: List[Violation] = []
        self._finished = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, simulation) -> "InvariantOracle":
        """Subscribe to *simulation*'s trace log.  Call once, before the
        run starts (records emitted earlier are not replayed)."""
        if self.simulation is not None:
            raise RuntimeError("oracle already attached; use one oracle per run")
        trace = simulation.trace
        if isinstance(trace, NullTraceLog):
            # subscribe() below would refuse anyway; fail with the
            # oracle-specific story so the fix is obvious.
            raise RuntimeError(
                "cannot attach an InvariantOracle to a NullTraceLog: the oracle "
                "observes the run through trace records and would see nothing; "
                "build the simulation with a real TraceLog "
                "(keep_trace/keep_records may still be off)"
            )
        self.simulation = simulation
        trace.subscribe(self._on_record)
        return self

    def _on_record(self, record: TraceRecord) -> None:
        self.records_checked += 1
        for invariant in self._by_kind.get(record.kind, ()):
            invariant.on_record(record)

    # ------------------------------------------------------------------
    # Violation sink (called by invariants)
    # ------------------------------------------------------------------
    def report(self, violation: Violation) -> None:
        """Record one violation (stores the first ``MAX_STORED_VIOLATIONS``)."""
        self.violation_count += 1
        if len(self._violations) < MAX_STORED_VIOLATIONS:
            self._violations.append(violation)

    @property
    def violations(self) -> Sequence[Violation]:
        """Stored violations, in detection order."""
        return tuple(self._violations)

    @property
    def ok(self) -> bool:
        """Whether no invariant has been violated so far."""
        return self.violation_count == 0

    # ------------------------------------------------------------------
    # End of run
    # ------------------------------------------------------------------
    def finish(self) -> Sequence[Violation]:
        """Run the end-of-run sweeps; idempotent.  Returns all stored
        violations (run-time and end-of-run alike).

        Liveness-style checks only apply when the event queue fully
        drained (``quiescent``): a horizon-bounded run legitimately
        stops with recoveries in flight.
        """
        if self.simulation is None:
            raise RuntimeError("oracle was never attached to a simulation")
        if not self._finished:
            self._finished = True
            ctx = EndContext(
                self.simulation,
                quiescent=self.simulation.sim.pending_events == 0,
            )
            for invariant in self._invariants:
                invariant.at_end(ctx)
        return self.violations

    def report_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (the ``validate`` CLI payload)."""
        per_invariant: Dict[str, int] = {
            invariant.name: 0 for invariant in self._invariants
        }
        for violation in self._violations:
            per_invariant[violation.invariant] = (
                per_invariant.get(violation.invariant, 0) + 1
            )
        return {
            "records_checked": self.records_checked,
            "violation_count": self.violation_count,
            "violations_by_invariant": per_invariant,
            "violations": [violation.to_dict() for violation in self._violations],
            "finished": self._finished,
        }
