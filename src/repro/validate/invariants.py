"""The protocol invariants the oracle checks.

Each invariant is a small state machine fed by trace records during the
run (``kinds`` names the record kinds it consumes) plus an optional
end-of-run sweep (``at_end``) that cross-checks the trace-derived
ledger against live member state.  Invariants never mutate the
simulation — they only observe and report :class:`Violation` objects.

The six invariants (see README "Validation"):

* **no-duplicate-delivery** — no member ever delivers the same data
  seq twice (``member_received`` is unique per ``(node, seq)``).
* **gapless-delivery** — at quiescence, every gap a member detected is
  filled, or was explicitly reported as a ``reliability_violation``
  (the §5 give-up path).  Skipped for runs stopped mid-flight.
* **buffer-conservation** — every ``buffer_add`` is eventually paired
  with a ``buffer_discard`` carrying a known reason, or the entry is
  still genuinely buffered at the end; nothing is discarded that was
  never added, nothing is buffered that was never traced, and the
  long-term index stays internally consistent.
* **long-term-quota** — the number of concurrent long-term holders of
  one message inside one region stays within a statistical envelope of
  the configured C (the paper's expected copy count).  The bound is
  ``C + 6·sqrt(max(C, 1)) + 4``: for the binomial coin flips §3.2
  prescribes, exceeding it has probability ~1e-9 per message, so a
  trip means systematic over-promotion, not bad luck.
* **recovery-liveness** — every ``loss_detected`` terminates: a
  ``recovery_completed``, a ``reliability_violation``, or the member
  leaving.  At quiescence no recovery may still be open or active.
* **fec-accounting** — each FEC block is encoded at most once, and its
  ``fec_parity_overhead`` record agrees with the encode record
  (``parity_messages == r``; byte counts match the wire sizes).

Two further invariants guard optional subsystems and stay inert when
those are off: **congestion-quota** (paced-rate window plus aggregate
long-term quota under congestion control) and **adaptive-topology**
(after every ``tree_reparent`` the hierarchy is acyclic, fully
connected, and no region is orphaned).

The workload-family invariants:

* **handoff-conservation** — every graceful leave balances its §3.2
  ledger: the long-term entries drained for handoff
  (``buffer_discard`` with reason ``handoff``) exactly equal the
  handoffs sent to peers plus the entries orphaned with the last
  member of a region.  Mobility scenarios exercise this hundreds of
  times per run (every region crossing is a leave + re-join).
* **rebuffer-accounting** — the streaming
  :class:`~repro.metrics.rebuffer.RebufferTracker` is cross-checked
  against an independent replay of the delivery trace: per receiver,
  stall events, stall time and frames played must agree exactly.
  Inert unless a playout spec is attached to the run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from repro.core.buffer import (
    DISCARD_FIXED,
    DISCARD_HANDOFF,
    DISCARD_IDLE,
    DISCARD_STABLE,
    DISCARD_TTL,
)
from repro.protocol.messages import DATA_WIRE_SIZE, Seq
from repro.sim.tracing import TraceRecord

NodeId = int

#: Discard reasons a ``buffer_discard`` record may carry.  DISCARD_CLOSE
#: never reaches the trace (member shutdown drops buffers silently and
#: the oracle clears its ledger on ``member_left``/``member_crashed``).
KNOWN_DISCARD_REASONS = frozenset(
    {DISCARD_IDLE, DISCARD_TTL, DISCARD_FIXED, DISCARD_STABLE, DISCARD_HANDOFF}
)


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which invariant, when, and the evidence."""

    invariant: str
    time: float
    message: str
    record: Optional[TraceRecord] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (used by the fuzz repro artifacts)."""
        payload: Dict[str, Any] = {
            "invariant": self.invariant,
            "time": self.time,
            "message": self.message,
        }
        if self.record is not None:
            payload["record"] = {
                "time": self.record.time,
                "kind": self.record.kind,
                "fields": dict(self.record.fields),
            }
        return payload


class EndContext:
    """What the end-of-run sweep may inspect.

    ``quiescent`` is true when the event queue fully drained — only
    then do the liveness-style invariants apply (a horizon-bounded run
    legitimately stops with recoveries mid-flight).
    """

    def __init__(self, simulation, quiescent: bool) -> None:
        self.simulation = simulation
        self.quiescent = quiescent

    def alive_members(self):
        return self.simulation.alive_members()


class Invariant:
    """Base class: subscribes to ``kinds``, reports via ``fail``."""

    #: Short identifier used in violations, reports and repro artifacts.
    name: str = "invariant"
    #: Trace kinds routed to :meth:`on_record` (empty = end-check only).
    kinds: Tuple[str, ...] = ()

    def __init__(self) -> None:
        self._sink = None

    def bind(self, sink) -> None:
        """Attach the violation sink (the oracle).  Called once."""
        self._sink = sink

    def fail(self, time: float, message: str,
             record: Optional[TraceRecord] = None) -> None:
        """Report one violation of this invariant."""
        self._sink.report(Violation(self.name, time, message, record))

    def on_record(self, record: TraceRecord) -> None:
        """Consume one trace record of a subscribed kind."""

    def at_end(self, ctx: EndContext) -> None:
        """End-of-run sweep over live member state."""


class NoDuplicateDelivery(Invariant):
    """``member_received`` fires at most once per (node, data seq)."""

    name = "no-duplicate-delivery"
    kinds = ("member_received",)

    def __init__(self) -> None:
        super().__init__()
        self._delivered: Set[Tuple[NodeId, Seq]] = set()

    def on_record(self, record: TraceRecord) -> None:
        key = (record["node"], record["seq"])
        if key in self._delivered:
            self.fail(
                record.time,
                f"member {key[0]} delivered seq {key[1]} twice "
                f"(second arrival via {record.get('via')!r})",
                record,
            )
        else:
            self._delivered.add(key)


class GaplessDelivery(Invariant):
    """At quiescence every detected gap is filled or explicitly failed."""

    name = "gapless-delivery"
    kinds = ("reliability_violation",)

    def __init__(self) -> None:
        super().__init__()
        self._given_up: Set[Tuple[NodeId, Seq]] = set()

    def on_record(self, record: TraceRecord) -> None:
        self._given_up.add((record["node"], record["seq"]))

    def at_end(self, ctx: EndContext) -> None:
        if not ctx.quiescent:
            return
        for member in ctx.alive_members():
            for seq in member.unresolved_gaps():
                if (member.node_id, seq) not in self._given_up:
                    self.fail(
                        ctx.simulation.sim.now,
                        f"member {member.node_id} still missing seq {seq} at "
                        "quiescence with no reliability_violation reported",
                    )


class BufferConservation(Invariant):
    """Every buffered message ends delivered-from-buffer or discarded
    with a known reason; trace ledger and live buffers must agree."""

    name = "buffer-conservation"
    kinds = ("buffer_add", "buffer_discard", "member_left", "member_crashed")

    def __init__(self) -> None:
        super().__init__()
        #: (node, seq) -> add time, for entries the trace says are live.
        self._live: Dict[Tuple[NodeId, Seq], float] = {}

    def on_record(self, record: TraceRecord) -> None:
        if record.kind in ("member_left", "member_crashed"):
            # Shutdown discards the member's buffer without trace
            # records (DISCARD_CLOSE); drop its ledger entries.
            node = record["node"]
            for key in [key for key in self._live if key[0] == node]:
                del self._live[key]
            return
        key = (record["node"], record["seq"])
        if record.kind == "buffer_add":
            if key in self._live:
                self.fail(
                    record.time,
                    f"member {key[0]} buffer_add for seq {key[1]} while the "
                    "entry is already live (double add)",
                    record,
                )
            else:
                self._live[key] = record.time
            return
        # buffer_discard
        reason = record.get("reason")
        if reason not in KNOWN_DISCARD_REASONS:
            self.fail(
                record.time,
                f"member {key[0]} discarded seq {key[1]} with unknown "
                f"reason {reason!r}",
                record,
            )
        if self._live.pop(key, None) is None:
            self.fail(
                record.time,
                f"member {key[0]} discarded seq {key[1]} that was never "
                "added (discard without add)",
                record,
            )

    def at_end(self, ctx: EndContext) -> None:
        members = {member.node_id: member for member in ctx.alive_members()}
        for (node, seq), added_at in sorted(self._live.items()):
            member = members.get(node)
            if member is None:
                self.fail(
                    ctx.simulation.sim.now,
                    f"trace says member {node} still buffers seq {seq}, but the "
                    "member is gone and never emitted a shutdown record",
                )
            elif not member.is_buffering(seq):
                self.fail(
                    ctx.simulation.sim.now,
                    f"trace says member {node} still buffers seq {seq} (added "
                    f"at t={added_at:g}), but its buffer disagrees",
                )
        for node, member in sorted(members.items()):
            for seq in member.buffered_seqs():
                if (node, seq) not in self._live:
                    self.fail(
                        ctx.simulation.sim.now,
                        f"member {node} buffers seq {seq} with no live "
                        "buffer_add trace entry",
                    )
            for problem in member.policy.buffer.check_index():
                self.fail(
                    ctx.simulation.sim.now,
                    f"member {node} long-term index inconsistent: {problem}",
                )


class LongTermQuota(Invariant):
    """Concurrent long-term holders per (region, message) stay within a
    statistical envelope of the configured C."""

    name = "long-term-quota"
    kinds = ("long_term_selected", "buffer_discard", "member_left", "member_crashed")

    def __init__(self) -> None:
        super().__init__()
        #: seq -> {node: region at promotion time}
        self._holders: Dict[Seq, Dict[NodeId, int]] = {}
        self._bound: Optional[float] = None

    def _quota_bound(self, simulation) -> float:
        if self._bound is None:
            c = float(simulation.config.long_term_c)
            self._bound = c + 6.0 * math.sqrt(max(c, 1.0)) + 4.0
        return self._bound

    def on_record(self, record: TraceRecord) -> None:
        simulation = self._sink.simulation
        if record.kind in ("member_left", "member_crashed"):
            node = record["node"]
            for holders in self._holders.values():
                holders.pop(node, None)
            return
        node, seq = record["node"], record["seq"]
        if record.kind == "buffer_discard":
            if record.get("was_long_term"):
                holders = self._holders.get(seq)
                if holders is not None:
                    holders.pop(node, None)
            return
        # long_term_selected
        holders = self._holders.setdefault(seq, {})
        if node in holders:
            return  # re-promotion (e.g. handoff onto an existing holder)
        hierarchy = simulation.hierarchy
        region = (
            hierarchy.region_id_of(node) if hierarchy.contains(node) else -1
        )
        holders[node] = region
        bound = self._quota_bound(simulation)
        in_region = sum(1 for other in holders.values() if other == region)
        if in_region > bound:
            self.fail(
                record.time,
                f"seq {seq} has {in_region} concurrent long-term holders in "
                f"region {region}, beyond the statistical quota "
                f"{bound:.1f} for C={simulation.config.long_term_c:g}",
                record,
            )


class RecoveryLiveness(Invariant):
    """Every detected loss terminates; nothing is left running at
    quiescence."""

    name = "recovery-liveness"
    kinds = (
        "loss_detected",
        "recovery_completed",
        "reliability_violation",
        "member_left",
        "member_crashed",
    )

    def __init__(self) -> None:
        super().__init__()
        self._open: Dict[Tuple[NodeId, Seq], float] = {}

    def on_record(self, record: TraceRecord) -> None:
        if record.kind in ("member_left", "member_crashed"):
            node = record["node"]
            for key in [key for key in self._open if key[0] == node]:
                del self._open[key]
            return
        key = (record["node"], record["seq"])
        if record.kind == "loss_detected":
            if key in self._open:
                self.fail(
                    record.time,
                    f"member {key[0]} detected seq {key[1]} twice without the "
                    "first recovery terminating",
                    record,
                )
            self._open[key] = record.time
            return
        # recovery_completed / reliability_violation
        if self._open.pop(key, None) is None:
            self.fail(
                record.time,
                f"member {key[0]} reported {record.kind} for seq {key[1]} "
                "with no open recovery (terminal event without detection)",
                record,
            )

    def at_end(self, ctx: EndContext) -> None:
        if not ctx.quiescent:
            return
        now = ctx.simulation.sim.now
        for (node, seq), detected_at in sorted(self._open.items()):
            self.fail(
                now,
                f"recovery of seq {seq} at member {node} (detected at "
                f"t={detected_at:g}) never completed, failed, or was "
                "cancelled by shutdown",
            )
        for member in ctx.alive_members():
            for seq in member.active_recovery_seqs():
                self.fail(
                    now,
                    f"member {member.node_id} recovery for seq {seq} is still "
                    "active at quiescence with no pending timer (stalled)",
                )


class FecAccounting(Invariant):
    """Parity overhead records agree with their encode records."""

    name = "fec-accounting"
    kinds = ("fec_encode", "fec_parity_overhead")

    def __init__(self) -> None:
        super().__init__()
        #: block id -> (k, r) from its fec_encode record.
        self._encoded: Dict[int, Tuple[int, int]] = {}
        self._accounted: Set[int] = set()

    def on_record(self, record: TraceRecord) -> None:
        block = record["block"]
        if record.kind == "fec_encode":
            if block in self._encoded:
                self.fail(
                    record.time,
                    f"FEC block {block} encoded twice",
                    record,
                )
            self._encoded[block] = (record["k"], record["r"])
            return
        # fec_parity_overhead
        if block in self._accounted:
            self.fail(
                record.time,
                f"FEC block {block} has two parity-overhead records",
                record,
            )
        self._accounted.add(block)
        encode = self._encoded.get(block)
        if encode is None:
            self.fail(
                record.time,
                f"parity-overhead record for block {block} with no encode",
                record,
            )
            return
        k, r = encode
        parity_messages = record["parity_messages"]
        if parity_messages != r:
            self.fail(
                record.time,
                f"block {block} emitted {parity_messages} parity messages "
                f"but was encoded with r={r}",
                record,
            )
        if record["parity_bytes"] != parity_messages * DATA_WIRE_SIZE:
            self.fail(
                record.time,
                f"block {block} parity_bytes {record['parity_bytes']} != "
                f"{parity_messages} x {DATA_WIRE_SIZE}",
                record,
            )
        if record["data_bytes"] != k * DATA_WIRE_SIZE:
            self.fail(
                record.time,
                f"block {block} data_bytes {record['data_bytes']} != "
                f"{k} x {DATA_WIRE_SIZE}",
                record,
            )


class CongestionQuota(Invariant):
    """With a congestion controller enabled, the sender's paced
    interval stays inside the configured rate window and the
    steady-state long-term occupancy stays within the §3.2 quota.

    The point of admission control is that overload cannot push
    buffering past the paper's statistical envelope: at quiescence each
    region's *aggregate* live long-term count must be at most
    ``C + 6·sqrt(max(C, 1)) + 4`` per message it holds.  Without CC the
    per-promotion check (:class:`LongTermQuota`) still applies; this
    sweep additionally catches slow aggregate creep that individual
    promotions never trip.  The invariant is inert (consumes nothing,
    reports nothing) when the run's congestion controller is ``none``.
    """

    name = "congestion-quota"
    kinds = (
        "cc_send",
        "cc_rate_change",
        "long_term_selected",
        "buffer_discard",
        "member_left",
        "member_crashed",
    )

    def __init__(self) -> None:
        super().__init__()
        #: seq -> {node: region at promotion time} (mirrors LongTermQuota).
        self._holders: Dict[Seq, Dict[NodeId, int]] = {}
        #: ``None`` until the first record, then ``False`` (CC off) or
        #: the ``(min_interval, max_interval)`` ms window.
        self._window = None

    def _rate_window(self):
        if self._window is None:
            congestion = getattr(
                self._sink.simulation.config, "congestion", None
            )
            if congestion is None or not congestion.enabled:
                self._window = False
            else:
                self._window = (
                    1000.0 / congestion.max_rate,
                    1000.0 / congestion.min_rate,
                )
        return self._window

    def on_record(self, record: TraceRecord) -> None:
        window = self._rate_window()
        if window is False:
            return
        if record.kind in ("cc_send", "cc_rate_change"):
            interval = record["interval"]
            low, high = window
            if not (low - 1e-9 <= interval <= high + 1e-9):
                self.fail(
                    record.time,
                    f"controller interval {interval:g} ms escaped the "
                    f"configured [{low:g}, {high:g}] ms rate window",
                    record,
                )
            return
        if record.kind in ("member_left", "member_crashed"):
            node = record["node"]
            for holders in self._holders.values():
                holders.pop(node, None)
            return
        node, seq = record["node"], record["seq"]
        if record.kind == "buffer_discard":
            if record.get("was_long_term"):
                holders = self._holders.get(seq)
                if holders is not None:
                    holders.pop(node, None)
            return
        # long_term_selected
        holders = self._holders.setdefault(seq, {})
        if node in holders:
            return
        hierarchy = self._sink.simulation.hierarchy
        holders[node] = (
            hierarchy.region_id_of(node) if hierarchy.contains(node) else -1
        )

    def at_end(self, ctx: EndContext) -> None:
        if self._rate_window() is False or not ctx.quiescent:
            return
        c = float(ctx.simulation.config.long_term_c)
        bound = c + 6.0 * math.sqrt(max(c, 1.0)) + 4.0
        totals: Dict[int, int] = {}
        messages: Dict[int, Set[Seq]] = {}
        for seq, holders in self._holders.items():
            for region in holders.values():
                totals[region] = totals.get(region, 0) + 1
                messages.setdefault(region, set()).add(seq)
        for region, total in sorted(totals.items()):
            budget = bound * len(messages[region])
            if total > budget:
                self.fail(
                    ctx.simulation.sim.now,
                    f"region {region} holds {total} long-term entries across "
                    f"{len(messages[region])} messages at steady state — "
                    f"beyond the §3.2 aggregate quota {budget:.1f} "
                    f"(bound {bound:.1f}/message for C={c:g}) despite "
                    "congestion control",
                )


class AdaptiveTopology(Invariant):
    """After every re-parent the hierarchy stays acyclic, fully
    connected, and no region is orphaned.

    The adaptive-tree optimizer (:mod:`repro.adapt`) mutates
    ``Region.parent_id`` at run time; this invariant audits each
    ``tree_reparent`` record against the live hierarchy — structural
    validity (:meth:`Hierarchy.validate`), every non-empty region's
    ancestry terminating at a root, and a single shared root for all
    non-empty regions (a split forest would silently partition remote
    recovery).  Inert on static runs: it consumes nothing unless a
    re-parent record appears.
    """

    name = "adaptive-topology"
    kinds = ("tree_reparent",)

    def __init__(self) -> None:
        super().__init__()
        self._reparents = 0

    def _check_topology(self, time: float,
                        record: Optional[TraceRecord] = None) -> None:
        hierarchy = self._sink.simulation.hierarchy
        try:
            hierarchy.validate()
        except Exception as exc:
            self.fail(time, f"hierarchy invalid after re-parent: {exc}", record)
            return
        roots: Set[int] = set()
        for region_id, region in sorted(hierarchy.regions.items()):
            if not region.members:
                continue
            seen = set()
            current = region_id
            while hierarchy.regions[current].parent_id is not None:
                if current in seen:  # validate() already failed above,
                    break            # but stay safe against partial state
                seen.add(current)
                current = hierarchy.regions[current].parent_id
            roots.add(current)
        if len(roots) > 1:
            self.fail(
                time,
                f"hierarchy split into {len(roots)} disconnected trees "
                f"(roots {sorted(roots)}) after re-parent",
                record,
            )

    def on_record(self, record: TraceRecord) -> None:
        self._reparents += 1
        new_parent = record.get("new_parent")
        hierarchy = self._sink.simulation.hierarchy
        if new_parent is not None:
            target = hierarchy.regions.get(new_parent)
            if target is None or not target.members:
                self.fail(
                    record.time,
                    f"region {record.get('region')} re-parented onto "
                    f"{'missing' if target is None else 'empty'} region "
                    f"{new_parent} (orphaned repair path)",
                    record,
                )
        self._check_topology(record.time, record)

    def at_end(self, ctx: EndContext) -> None:
        if self._reparents:
            self._check_topology(ctx.simulation.sim.now)


class HandoffConservation(Invariant):
    """Every graceful leave balances its §3.2 handoff ledger.

    When a member leaves, the long-term entries it drained for handoff
    (``buffer_discard`` records with reason ``handoff``) must exactly
    equal the handoffs it sent to peers (``handoff_sent``) plus the
    entries orphaned because it was the last member of its region
    (``handoff_orphaned``).  The three record groups precede the
    ``member_left`` record within one leave, so the ledger can be
    settled per node as it departs.  Mobility handoffs go through the
    same path, so roaming scenarios check this on every region
    crossing.
    """

    name = "handoff-conservation"
    kinds = ("buffer_discard", "handoff_sent", "handoff_orphaned",
             "member_left", "member_crashed")

    def __init__(self) -> None:
        super().__init__()
        self._drained: Dict[NodeId, int] = {}
        self._sent: Dict[NodeId, int] = {}
        self._orphaned: Dict[NodeId, int] = {}

    def _clear(self, node: NodeId) -> None:
        self._drained.pop(node, None)
        self._sent.pop(node, None)
        self._orphaned.pop(node, None)

    def on_record(self, record: TraceRecord) -> None:
        node = record["node"]
        if record.kind == "buffer_discard":
            if record.get("reason") == DISCARD_HANDOFF:
                self._drained[node] = self._drained.get(node, 0) + 1
            return
        if record.kind == "handoff_sent":
            self._sent[node] = self._sent.get(node, 0) + 1
            return
        if record.kind == "handoff_orphaned":
            self._orphaned[node] = self._orphaned.get(node, 0) + int(record["count"])
            return
        if record.kind == "member_crashed":
            # A crash performs no handoff; stale counters would mean a
            # drain that never reached a leave — flagged at the end.
            return
        # member_left: settle the ledger for this node.
        drained = self._drained.get(node, 0)
        sent = self._sent.get(node, 0)
        orphaned = self._orphaned.get(node, 0)
        if drained != sent + orphaned:
            self.fail(
                record.time,
                f"node {node} left with an unbalanced handoff ledger: "
                f"{drained} long-term entries drained but {sent} handed "
                f"off + {orphaned} orphaned",
                record,
            )
        self._clear(node)

    def at_end(self, ctx: EndContext) -> None:
        for node in sorted(set(self._drained) | set(self._sent) | set(self._orphaned)):
            drained = self._drained.get(node, 0)
            sent = self._sent.get(node, 0)
            orphaned = self._orphaned.get(node, 0)
            self.fail(
                ctx.simulation.sim.now,
                f"node {node} has handoff records ({drained} drained, "
                f"{sent} sent, {orphaned} orphaned) but never completed "
                "a graceful leave",
            )


class RebufferAccounting(Invariant):
    """The streaming rebuffer tracker agrees with a trace replay.

    Keeps an independent per-receiver ledger of ``member_received``
    arrivals and, at the end of the run, replays it through the same
    playout model (:func:`repro.metrics.rebuffer.replay_rebuffer`) the
    attached :class:`~repro.metrics.rebuffer.RebufferTracker` ran
    incrementally — stall events, stall time and frames played must
    agree exactly, receiver for receiver.  Inert unless the
    materializer stashed a playout spec and tracker on the simulation.
    """

    name = "rebuffer-accounting"
    kinds = ("member_received",)

    def __init__(self) -> None:
        super().__init__()
        self._arrivals: Dict[NodeId, list] = {}

    def on_record(self, record: TraceRecord) -> None:
        self._arrivals.setdefault(record["node"], []).append(
            (record["seq"], record.time)
        )

    def at_end(self, ctx: EndContext) -> None:
        simulation = ctx.simulation
        playout = getattr(simulation, "playout_spec", None)
        tracker = getattr(simulation, "rebuffer_tracker", None)
        if playout is None or tracker is None or not playout.enabled:
            return
        from repro.metrics.rebuffer import replay_rebuffer

        now = simulation.sim.now
        if set(self._arrivals) != set(tracker.clocks):
            missing = sorted(set(self._arrivals) ^ set(tracker.clocks))
            self.fail(
                now,
                f"rebuffer tracker and delivery trace disagree on the "
                f"receiver set (mismatched nodes: {missing[:5]})",
            )
            return
        for node in sorted(self._arrivals):
            replayed = replay_rebuffer(
                self._arrivals[node], playout.interval, playout.startup_delay
            )
            clock = tracker.clocks[node]
            expected = (replayed.stall_events, replayed.stall_time,
                        replayed.frames_played, replayed.skipped)
            observed = (clock.stall_events, clock.stall_time,
                        clock.frames_played, clock.skipped)
            if expected != observed:
                self.fail(
                    now,
                    f"node {node} rebuffer accounting diverged from the "
                    f"delivery trace: replay says (events, stall_ms, "
                    f"played, skipped)={expected}, tracker says {observed}",
                )


def default_invariants() -> Sequence[Invariant]:
    """Fresh instances of the full invariant set, in check order."""
    return (
        NoDuplicateDelivery(),
        GaplessDelivery(),
        BufferConservation(),
        LongTermQuota(),
        RecoveryLiveness(),
        FecAccounting(),
        CongestionQuota(),
        AdaptiveTopology(),
        HandoffConservation(),
        RebufferAccounting(),
    )
