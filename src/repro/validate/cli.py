"""The ``validate`` CLI subcommand: oracle runs, fuzzing, replays.

Wired into the ``rrmp-experiments`` entry point::

    rrmp-experiments validate run scale --json
    rrmp-experiments validate fuzz --trials 200 --seed 0 --artifacts out/
    rrmp-experiments validate replay out/repro_000042_ab12cd34ef56.json
    rrmp-experiments validate replay out/   # every artifact, summarized
    rrmp-experiments validate digest wan_burst_loss

``run`` executes one registered scenario (or a spec JSON file) with
the invariant oracle attached; ``fuzz`` samples random specs (see
:mod:`repro.validate.fuzz`); ``replay`` re-runs the spec stored in a
repro artifact; ``digest`` prints a scenario's trace digest (what the
golden baselines under ``tests/baselines/`` pin).

Exit codes: 0 = clean, 1 = invariant violations (or a crashing spec),
2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.metrics.runreport import RunReport
from repro.scenario.registry import get_scenario
from repro.scenario.spec import ScenarioSpec
from repro.sim.tracing import trace_digest
from repro.validate.fuzz import load_artifact_spec, run_fuzz, run_spec


def add_validate_parser(commands) -> None:
    """Attach the ``validate`` subcommand tree to *commands*."""
    parser = commands.add_parser(
        "validate",
        help="check protocol invariants: oracle runs, scenario fuzzing, replays",
    )
    actions = parser.add_subparsers(dest="validate_command", required=True)

    run = actions.add_parser(
        "run", help="run one scenario (registry name or spec JSON file) "
                    "under the invariant oracle",
    )
    run.add_argument("scenario", help="registered scenario name or path to a "
                                      "ScenarioSpec JSON file")
    run.add_argument("--seed", type=int, default=None,
                     help="override the spec's master seed")
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print the oracle report as JSON")

    fuzz = actions.add_parser(
        "fuzz", help="sample random scenario specs and run each under the oracle",
    )
    fuzz.add_argument("--trials", type=int, default=50, metavar="N",
                      help="number of sampled specs to run (default: 50)")
    fuzz.add_argument("--seed", type=int, default=0, metavar="S",
                      help="fuzzer seed; trials are deterministic per "
                           "(seed, index) (default: 0)")
    fuzz.add_argument("--artifacts", default=None, metavar="DIR",
                      help="write a repro artifact per failure into DIR")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="skip spec minimization on failure")
    fuzz.add_argument("--json", action="store_true", dest="as_json",
                      help="print the fuzz report as JSON")

    replay = actions.add_parser(
        "replay", help="re-run the spec stored in a fuzz repro artifact "
                       "(or every artifact in a directory)",
    )
    replay.add_argument("artifact", help="path to a repro artifact (or bare "
                                         "spec) JSON file, or a directory "
                                         "of artifacts")
    replay.add_argument("--json", action="store_true", dest="as_json",
                        help="print the oracle report as JSON")

    digest = actions.add_parser(
        "digest", help="print a scenario's deterministic trace digest",
    )
    digest.add_argument("scenario")
    digest.add_argument("--seed", type=int, default=None,
                        help="override the spec's master seed")


def main_validate(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``validate`` invocation; returns the exit code."""
    command = args.validate_command
    if command == "fuzz":
        return _cmd_fuzz(args)
    if command == "replay":
        if os.path.isdir(args.artifact):
            return _replay_directory(args.artifact, as_json=args.as_json)
        try:
            spec = load_artifact_spec(args.artifact)
        except (OSError, ValueError, KeyError) as error:
            print(f"error: cannot load artifact {args.artifact!r}: {error}",
                  file=sys.stderr)
            return 2
        return _run_under_oracle(spec, as_json=args.as_json)
    # run / digest need a scenario lookup
    try:
        spec = _resolve_scenario(args.scenario)
    except (KeyError, OSError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.seed is not None:
        spec = spec.with_(seed=args.seed)
    if command == "digest":
        return _cmd_digest(spec)
    return _run_under_oracle(spec, as_json=args.as_json)


def _resolve_scenario(name: str) -> ScenarioSpec:
    """A registry name, or a path to a ScenarioSpec JSON file."""
    try:
        return get_scenario(name)
    except KeyError:
        if os.path.exists(name):
            with open(name, encoding="utf-8") as handle:
                return ScenarioSpec.from_json(handle.read())
        raise


def _run_under_oracle(spec: ScenarioSpec, as_json: bool) -> int:
    outcome = run_spec(spec)
    report = RunReport(
        kind="validate", scenario=spec.name, seed=spec.seed,
        metrics={
            "scenario": spec.name,
            "seed": spec.seed,
            # The digest of the spec as the user named it — run_spec
            # forces measurement.oracle on internally, and that mutated
            # spec's digest would match neither `scenarios describe`
            # nor the spec file on disk.
            "digest": spec.digest(),
            "error": outcome.error,
            "violation_count": outcome.violation_count,
            "records_checked": outcome.records_checked,
            "events_fired": outcome.events_fired,
            "violations": outcome.violations,
        },
        failed=outcome.failed,
    )
    if as_json:
        print(report.to_json())
        return report.exit_code
    print(f"== validate {spec.name} (seed {spec.seed}) ==")
    print(f"  records checked      {outcome.records_checked}")
    print(f"  events fired         {outcome.events_fired}")
    print(f"  invariant violations {outcome.violation_count}")
    if outcome.error is not None:
        print(f"  CRASH: {outcome.error}")
    for violation in outcome.violations[:20]:
        print(f"  [{violation['invariant']}] t={violation['time']:g} "
              f"{violation['message']}")
    if outcome.violation_count > 20:
        print(f"  ... and {outcome.violation_count - 20} more")
    if not outcome.failed:
        print("  all invariants hold")
    return 1 if outcome.failed else 0


def _replay_directory(directory: str, as_json: bool) -> int:
    """Replay every ``*.json`` artifact under *directory*, summarize.

    Exit codes: 0 = every artifact replays clean, 1 = at least one
    still fails (or fails to load), 2 = no artifacts found.
    """
    paths = sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )
    if not paths:
        print(f"error: no *.json artifacts in {directory!r}", file=sys.stderr)
        return 2
    results = []
    for path in paths:
        entry = {"artifact": path}
        try:
            spec = load_artifact_spec(path)
        except (OSError, ValueError, KeyError) as error:
            entry.update(status="load_error", error=str(error))
            results.append(entry)
            continue
        outcome = run_spec(spec)
        entry.update(
            status="fail" if outcome.failed else "ok",
            scenario=spec.name,
            seed=spec.seed,
            violation_count=outcome.violation_count,
            error=outcome.error,
        )
        results.append(entry)
    failed = [r for r in results if r["status"] != "ok"]
    report = RunReport(
        kind="validate", scenario=directory, seed=0,
        metrics={
            "directory": directory,
            "artifacts": len(results),
            "failures": len(failed),
            "results": results,
        },
        failed=bool(failed),
    )
    if as_json:
        print(report.to_json())
        return report.exit_code
    print(f"== replay {directory} ({len(results)} artifacts) ==")
    for entry in results:
        name = os.path.basename(entry["artifact"])
        if entry["status"] == "load_error":
            print(f"  LOAD ERROR  {name}: {entry['error']}")
        elif entry["status"] == "fail":
            detail = entry["error"] or f"{entry['violation_count']} violations"
            print(f"  FAIL        {name}  {entry['scenario']} "
                  f"(seed {entry['seed']}): {detail}")
        else:
            print(f"  ok          {name}  {entry['scenario']} "
                  f"(seed {entry['seed']})")
    print(f"  {len(results) - len(failed)}/{len(results)} replay clean")
    return 1 if failed else 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.trials < 1:
        print("error: --trials must be >= 1", file=sys.stderr)
        return 2

    def progress(index: int, outcome) -> None:
        if not args.as_json:
            status = "FAIL" if outcome.failed else "ok"
            print(f"trial {index:4d}  {status:4s}  {outcome.spec.name}  "
                  f"records={outcome.records_checked}", file=sys.stderr)

    report = run_fuzz(
        trials=args.trials,
        seed=args.seed,
        artifact_dir=args.artifacts,
        minimize=not args.no_minimize,
        progress=progress,
    )
    if args.as_json:
        print(json.dumps(report.to_dict()))
    else:
        print(f"== fuzz: {report.trials} trials, seed {report.seed} ==")
        print(f"  records checked   {report.records_checked}")
        print(f"  events fired      {report.events_fired}")
        print(f"  failing trials    {len(report.failures)}")
        for failure in report.failures:
            print(f"  trial {failure['trial_index']}: {failure['failure']} "
                  f"(digest {failure['digest'][:12]})")
        for path in report.artifacts:
            print(f"  artifact: {path}")
        if report.ok:
            print("  all invariants hold on every sampled scenario")
    return 0 if report.ok else 1


def _cmd_digest(spec: ScenarioSpec) -> int:
    built = spec.build().run()
    records = built.simulation.trace.records
    print(f"{trace_digest(records)}  {spec.name} "
          f"(seed {spec.seed}, {len(records)} records)")
    return 0
