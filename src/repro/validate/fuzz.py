"""Seeded scenario fuzzing under the invariant oracle.

The paper's claims were exercised at exactly seven hand-picked points
of the :class:`~repro.scenario.spec.ScenarioSpec` space; the fuzzer
samples that space at random — topology × traffic × loss × churn ×
policy × FEC — and runs every sampled spec under the full invariant
oracle.  Sampling is deterministic per ``(seed, trial index)``, so a
reported failure is reproducible by seed alone, and every failure is
additionally written out as a **repro artifact**: the (minimized)
spec's JSON, its digest, and the first violating trace record, so any
failure is a one-command replay::

    rrmp-experiments validate fuzz --trials 200 --seed 0 --artifacts out/
    rrmp-experiments validate replay out/repro_000042_ab12cd34ef56.json

Sampled specs are bounded small (tens of members, a handful of
messages, sub-second sim horizons) so hundreds of trials run in
seconds; they always end with a drain to a quiescent queue, which is
what arms the oracle's liveness checks.  Two sampling rules keep the
generated space inside the protocol's stated operating envelope rather
than trivially violating it: ``max_recovery_time`` is always finite
(otherwise a message nobody buffers spins recovery forever — the §5
trade-off, not a bug) and ``max_search_rounds`` is always finite (an
unbounded search for a fully-discarded message never terminates).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.scenario.spec import (
    AdaptSpec,
    ChurnSpec,
    CongestionSpec,
    FecSpec,
    LossSpec,
    MeasurementSpec,
    MobilitySpec,
    PlayoutSpec,
    PolicySpec,
    ScenarioSpec,
    TopologySpec,
    TrafficSpec,
)

ARTIFACT_FORMAT = "rrmp-validate-repro/1"

#: Policy families the fuzzer samples.  ``stability`` is excluded: its
#: gossip agents tick forever, so a drain-to-quiescence run never ends.
POLICY_CHOICES = (
    "two_phase", "two_phase", "two_phase", "two_phase",  # weight the paper's policy
    "fixed_time", "fixed_time",
    "hash",
    "never_discard",
    "no_buffer",
)


# ----------------------------------------------------------------------
# Spec sampling
# ----------------------------------------------------------------------
def _sample_topology(rng: random.Random) -> TopologySpec:
    kind = rng.choice(("single_region", "single_region", "chain", "chain",
                       "star", "balanced_tree"))
    intra = rng.choice((2.5, 5.0, 10.0))
    inter = rng.choice((20.0, 40.0, 80.0))
    if kind == "single_region":
        return TopologySpec(kind=kind, n=rng.randint(2, 10),
                            intra_one_way=intra, inter_one_way=inter)
    if kind == "chain":
        sizes = tuple(rng.randint(2, 6) for _ in range(rng.randint(2, 3)))
        return TopologySpec(kind=kind, sizes=sizes,
                            intra_one_way=intra, inter_one_way=inter)
    if kind == "star":
        sizes = tuple(rng.randint(2, 5) for _ in range(rng.randint(1, 2)))
        return TopologySpec(kind=kind, n=rng.randint(2, 5), sizes=sizes,
                            intra_one_way=intra, inter_one_way=inter)
    return TopologySpec(kind="balanced_tree", depth=1, fanout=2,
                        n=rng.randint(2, 3),
                        intra_one_way=intra, inter_one_way=inter)


def _sample_traffic(rng: random.Random, member_count: int) -> TrafficSpec:
    kind = rng.choice(("uniform", "uniform", "uniform", "poisson",
                       "burst", "ramp", "detect_all"))
    if kind == "uniform":
        return TrafficSpec(kind=kind, count=rng.randint(2, 10),
                           interval=rng.choice((5.0, 10.0, 25.0, 40.0)),
                           start=1.0)
    if kind == "poisson":
        return TrafficSpec(kind=kind, rate=rng.choice((0.02, 0.05, 0.1)),
                           duration=float(rng.randint(150, 350)), start=1.0)
    if kind == "burst":
        bursts = tuple(
            (float(rng.randint(1, 200)), rng.randint(2, 5))
            for _ in range(rng.randint(1, 3))
        )
        return TrafficSpec(kind=kind, bursts=bursts)
    if kind == "ramp":
        return TrafficSpec(kind=kind, count=rng.randint(4, 10),
                           initial_interval=rng.choice((20.0, 30.0)),
                           final_interval=rng.choice((2.0, 5.0)), start=1.0)
    return TrafficSpec(kind="detect_all",
                       holders=rng.randint(1, max(1, member_count // 2)))


def _traffic_end(traffic: TrafficSpec) -> float:
    """Upper bound on the last scheduled send time."""
    if traffic.kind == "uniform":
        return traffic.start + traffic.count * traffic.interval
    if traffic.kind == "poisson":
        return traffic.start + traffic.duration
    if traffic.kind == "burst":
        return max((time for time, _size in traffic.bursts), default=0.0)
    if traffic.kind == "ramp":
        mean_gap = (traffic.initial_interval + traffic.final_interval) / 2.0
        return traffic.start + traffic.count * mean_gap
    return 0.0  # detect_all injects at build time


def _sample_loss(rng: random.Random) -> LossSpec:
    kind = rng.choice(("none", "bernoulli", "bernoulli", "bernoulli",
                       "fixed_holders", "region_correlated", "gilbert_elliott",
                       "outage"))
    if kind == "bernoulli":
        return LossSpec(kind=kind, p=rng.choice((0.05, 0.1, 0.2, 0.35)))
    if kind == "fixed_holders":
        return LossSpec(kind=kind, k=rng.randint(0, 3))
    if kind == "region_correlated":
        return LossSpec(kind=kind,
                        region_loss=rng.choice((0.1, 0.25, 0.5)),
                        receiver_loss=rng.choice((0.0, 0.05, 0.15)))
    if kind == "gilbert_elliott":
        return LossSpec(kind=kind,
                        p_good_to_bad=rng.choice((0.01, 0.05)),
                        p_bad_to_good=rng.choice((0.2, 0.4)),
                        p_bad=rng.choice((0.5, 0.8)))
    if kind == "outage":
        return LossSpec(kind=kind,
                        outage_start=rng.choice((20.0, 60.0, 120.0)),
                        outage_duration=rng.choice((60.0, 120.0, 250.0)),
                        outage_regions=rng.randint(1, 2),
                        receiver_loss=rng.choice((0.0, 0.05)))
    return LossSpec()


def _sample_churn(rng: random.Random) -> ChurnSpec:
    if rng.random() < 0.55:
        return ChurnSpec()
    return ChurnSpec(
        kind="random",
        leave_rate=rng.choice((0.0, 0.002, 0.005)),
        crash_rate=rng.choice((0.0, 0.002, 0.005)),
        join_rate=rng.choice((0.0, 0.002, 0.005)),
        protect_sender=True,
    )


def _sample_policy(rng: random.Random) -> PolicySpec:
    kind = rng.choice(POLICY_CHOICES)
    # Finite recovery deadline and search budget keep every sampled run
    # terminating (see module docstring); sessions always on so tail
    # losses are detectable at all.
    common: Dict[str, Any] = dict(
        session_interval=float(rng.randint(15, 45)),
        remote_lambda=rng.choice((0.5, 1.0, 2.0)),
        max_recovery_time=float(rng.randint(300, 700)),
        max_search_rounds=rng.randint(8, 24),
    )
    if kind == "two_phase":
        return PolicySpec(
            kind=kind,
            c=rng.choice((0.0, 1.0, 3.0, 6.0)),
            idle_threshold=float(rng.randint(10, 60)),
            long_term_ttl=rng.choice((None, 150.0, 400.0)),
            **common,
        )
    if kind == "fixed_time":
        return PolicySpec(kind=kind, hold_time=float(rng.randint(40, 300)), **common)
    if kind == "hash":
        return PolicySpec(kind=kind, c=rng.choice((1.0, 3.0, 6.0)), **common)
    return PolicySpec(kind=kind, **common)


def _sample_fec(rng: random.Random) -> FecSpec:
    if rng.random() < 0.6:
        return FecSpec()
    return FecSpec(
        mode=rng.choice(("proactive", "reactive")),
        block_size=rng.randint(2, 6),
        parity=rng.randint(1, 2),
        flush_after=rng.choice((1.0, 20.0)),
    )


def _sample_congestion(rng: random.Random) -> CongestionSpec:
    # Mostly off, so the bulk of trials keep exercising the open-loop
    # paths; when on, small rate windows and short feedback intervals
    # make the controller actually move within a fuzz-sized run.
    if rng.random() < 0.7:
        return CongestionSpec()
    min_rate = rng.choice((1.0, 5.0, 20.0))
    return CongestionSpec(
        controller=rng.choice(("tfmcc", "tfmcc", "aimd")),
        target_loss=rng.choice((0.01, 0.05, 0.15)),
        min_rate=min_rate,
        max_rate=min_rate * rng.choice((5.0, 20.0, 100.0)),
        feedback_interval=rng.choice((20.0, 50.0, 100.0)),
        parity_min=rng.choice((None, 1)),
        parity_max=rng.choice((None, 2, 4)),
    )


def _sample_adapt(rng: random.Random) -> AdaptSpec:
    # ~30% on, so the adaptive-topology invariant sees adversarial
    # topologies regularly without dominating the trial budget.  Update
    # intervals are bounded small relative to fuzz-sized horizons so
    # the optimizer actually gets passes in.
    if rng.random() < 0.7:
        return AdaptSpec()
    return AdaptSpec(
        mode="passive",
        update_interval=rng.choice((50.0, 100.0, 200.0)),
        hysteresis=rng.choice((0.0, 0.1, 0.3)),
        max_reparents=rng.randint(1, 6),
        ewma_alpha=rng.choice((0.1, 0.2, 0.5)),
    )


def _sample_mobility(rng: random.Random) -> MobilitySpec:
    # ~30% on, mirroring the adapt node: the handoff-conservation
    # invariant then sees mobility handoffs regularly.  Duration 0
    # resolves to the measurement bound, so movement always terminates.
    if rng.random() < 0.7:
        return MobilitySpec()
    return MobilitySpec(
        kind="waypoint",
        speed=rng.choice((2.0, 5.0, 10.0)),
        epoch=rng.choice((25.0, 50.0)),
        distance_loss=rng.choice((0.0, 0.1, 0.25)),
        protect_sender=True,
    )


def _sample_playout(rng: random.Random) -> PlayoutSpec:
    # ~30% on: the rebuffer-accounting invariant cross-checks the
    # tracker against the delivery trace on these trials.
    if rng.random() < 0.7:
        return PlayoutSpec()
    return PlayoutSpec(
        kind="cbr",
        interval=rng.choice((10.0, 25.0, 50.0)),
        startup_delay=rng.choice((0.0, 50.0, 150.0)),
    )


def sample_spec(seed: int, index: int) -> ScenarioSpec:
    """The deterministically-sampled spec for trial *index* of *seed*."""
    rng = random.Random(seed * 1_000_003 + index)
    topology = _sample_topology(rng)
    traffic = _sample_traffic(rng, topology.member_count())
    loss = _sample_loss(rng)
    churn = _sample_churn(rng)
    policy = _sample_policy(rng)
    fec = _sample_fec(rng)
    congestion = _sample_congestion(rng)
    adapt = _sample_adapt(rng)
    mobility = _sample_mobility(rng)
    playout = _sample_playout(rng)
    session = policy.session_interval or 50.0
    duration = _traffic_end(traffic) + 3.0 * session + 100.0
    if congestion.enabled:
        # A throttled sender stretches the stream: the last arrival may
        # wait for credit at min_rate before the tail settles.
        duration += 1000.0 / congestion.min_rate + 3.0 * session
    if mobility.enabled:
        # Handoff re-joins accumulate gaps late in the run; give the
        # fresh members room to detect and recover (or give up) before
        # the drain is judged.
        duration += 300.0
    if loss.kind == "outage":
        # The partition must heal inside the run, with recovery room
        # after it, or gapless-delivery is judged mid-outage.
        duration = max(duration,
                       loss.outage_start + loss.outage_duration + 3.0 * session + 200.0)
    measurement = MeasurementSpec(duration=duration, drain=True, oracle=True)
    return ScenarioSpec(
        name=f"fuzz-{seed}-{index}",
        seed=rng.randint(0, 2**31 - 1),
        topology=topology,
        traffic=traffic,
        loss=loss,
        churn=churn,
        policy=policy,
        fec=fec,
        congestion=congestion,
        adapt=adapt,
        mobility=mobility,
        playout=playout,
        measurement=measurement,
        description=f"fuzzer sample (fuzz seed {seed}, trial {index})",
    )


# ----------------------------------------------------------------------
# Running one spec under the oracle
# ----------------------------------------------------------------------
@dataclass
class TrialOutcome:
    """What happened when one spec ran under the oracle."""

    spec: ScenarioSpec
    violations: List[Dict[str, Any]] = field(default_factory=list)
    violation_count: int = 0
    records_checked: int = 0
    events_fired: int = 0
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.violation_count > 0 or self.error is not None

    @property
    def failure_key(self) -> str:
        """What class of failure this is (used to steer minimization)."""
        if self.error is not None:
            return f"error:{self.error.splitlines()[0][:80]}"
        if self.violations:
            return f"invariant:{self.violations[0]['invariant']}"
        return ""


def run_spec(spec: ScenarioSpec) -> TrialOutcome:
    """Build and run *spec* under the oracle, capturing crashes too."""
    spec = replace(spec, measurement=replace(spec.measurement, oracle=True))
    outcome = TrialOutcome(spec=spec)
    try:
        built = spec.build().run()
    except Exception as error:  # noqa: BLE001 - a crash IS a fuzz finding
        outcome.error = f"{type(error).__name__}: {error}"
        return outcome
    oracle = built.oracle
    assert oracle is not None  # measurement.oracle forced above
    report = oracle.report_dict()
    outcome.violations = report["violations"]
    outcome.violation_count = report["violation_count"]
    outcome.records_checked = report["records_checked"]
    outcome.events_fired = built.simulation.sim.events_fired
    return outcome


# ----------------------------------------------------------------------
# Minimization
# ----------------------------------------------------------------------
def _shrink_candidates(spec: ScenarioSpec) -> List[Tuple[str, ScenarioSpec]]:
    """Ordered simplifications of *spec* to try (coarsest first)."""
    candidates: List[Tuple[str, ScenarioSpec]] = []
    if spec.mobility.enabled:
        candidates.append(("drop mobility", replace(spec, mobility=MobilitySpec())))
    if spec.playout.enabled:
        candidates.append(("drop playout", replace(spec, playout=PlayoutSpec())))
    if spec.churn.kind != "none":
        candidates.append(("drop churn", replace(spec, churn=ChurnSpec())))
    if spec.congestion.enabled:
        candidates.append(
            ("drop congestion", replace(spec, congestion=CongestionSpec()))
        )
    if spec.adapt.enabled:
        candidates.append(("drop adapt", replace(spec, adapt=AdaptSpec())))
    if spec.fec.mode != "off":
        candidates.append(("drop fec", replace(spec, fec=FecSpec())))
    if spec.loss.kind != "none":
        candidates.append(("drop loss", replace(spec, loss=LossSpec())))
    traffic = spec.traffic
    if traffic.kind in ("uniform", "ramp") and traffic.count > 1:
        candidates.append((
            "halve traffic",
            replace(spec, traffic=replace(traffic, count=max(1, traffic.count // 2))),
        ))
    if traffic.kind == "poisson" and traffic.duration > 50.0:
        candidates.append((
            "halve traffic window",
            replace(spec, traffic=replace(traffic, duration=traffic.duration / 2.0)),
        ))
    if traffic.kind == "burst" and len(traffic.bursts) > 1:
        candidates.append((
            "drop bursts",
            replace(spec, traffic=replace(traffic, bursts=traffic.bursts[:1])),
        ))
    topology = spec.topology
    if topology.kind == "single_region" and topology.n > 2:
        smaller = replace(topology, n=max(2, topology.n // 2))
        candidates.append(("halve region", _clamped(spec, smaller)))
    if topology.kind in ("chain", "star") and len(topology.sizes) > 1:
        smaller = replace(topology, sizes=topology.sizes[:-1])
        candidates.append(("drop region", _clamped(spec, smaller)))
    return candidates


def _clamped(spec: ScenarioSpec, topology: TopologySpec) -> ScenarioSpec:
    """Re-fit member-count-dependent traffic fields to a smaller topology."""
    traffic = spec.traffic
    members = topology.member_count()
    if traffic.kind == "detect_all" and traffic.holders > members:
        traffic = replace(traffic, holders=max(1, members))
    if traffic.kind == "search_probe":
        first = topology.sizes[0] if topology.kind == "chain" and topology.sizes \
            else topology.n
        if traffic.bufferers > first:
            traffic = replace(traffic, bufferers=first)
    return replace(spec, topology=topology, traffic=traffic)


def minimize_spec(
    spec: ScenarioSpec,
    failure_key: str,
    max_runs: int = 24,
) -> Tuple[ScenarioSpec, Optional[TrialOutcome], int]:
    """Greedily simplify *spec* while it keeps failing the same way.

    Returns ``(smallest reproducing spec, its failing outcome or None
    if no shrink succeeded, verification runs spent)``.  Conservative
    by construction: a candidate is accepted only if a fresh run still
    produces the same failure class (same first-violated invariant, or
    same error type) — so the returned outcome needs no re-running.
    """
    runs = 0
    best: Optional[TrialOutcome] = None
    progress = True
    while progress and runs < max_runs:
        progress = False
        for _label, candidate in _shrink_candidates(spec):
            if runs >= max_runs:
                break
            try:
                outcome = run_spec(candidate)
            except Exception:  # pragma: no cover - run_spec already guards
                continue
            runs += 1
            if outcome.failed and outcome.failure_key == failure_key:
                spec = candidate
                best = outcome
                progress = True
                break
    return spec, best, runs


# ----------------------------------------------------------------------
# Repro artifacts
# ----------------------------------------------------------------------
def artifact_payload(
    outcome: TrialOutcome,
    fuzz_seed: int,
    trial_index: int,
) -> Dict[str, Any]:
    """The JSON body of one repro artifact."""
    payload: Dict[str, Any] = {
        "format": ARTIFACT_FORMAT,
        "fuzz_seed": fuzz_seed,
        "trial_index": trial_index,
        "digest": outcome.spec.digest(),
        "failure": outcome.failure_key,
        "violation_count": outcome.violation_count,
        "spec": outcome.spec.to_dict(),
        "replay": "rrmp-experiments validate replay <this file>",
    }
    if outcome.error is not None:
        payload["error"] = outcome.error
    if outcome.violations:
        payload["first_violation"] = outcome.violations[0]
    return payload


def write_artifact(payload: Dict[str, Any], directory: str) -> str:
    """Write one artifact; returns its path."""
    os.makedirs(directory, exist_ok=True)
    name = (
        f"repro_{payload['trial_index']:06d}_{payload['digest'][:12]}.json"
    )
    path = os.path.join(directory, name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return path


def load_artifact_spec(path: str) -> ScenarioSpec:
    """The spec stored in a repro artifact (or a bare spec JSON file)."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and "spec" in payload:
        payload = payload["spec"]
    return ScenarioSpec.from_dict(payload)


# ----------------------------------------------------------------------
# The fuzz loop
# ----------------------------------------------------------------------
@dataclass
class FuzzReport:
    """Aggregate result of one fuzz session."""

    trials: int
    seed: int
    failures: List[Dict[str, Any]] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)
    records_checked: int = 0
    events_fired: int = 0
    minimization_runs: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trials": self.trials,
            "seed": self.seed,
            "ok": self.ok,
            "failures": self.failures,
            "artifacts": self.artifacts,
            "records_checked": self.records_checked,
            "events_fired": self.events_fired,
            "minimization_runs": self.minimization_runs,
        }


def run_fuzz(
    trials: int,
    seed: int = 0,
    artifact_dir: Optional[str] = None,
    minimize: bool = True,
    progress: Optional[Callable[[int, TrialOutcome], None]] = None,
) -> FuzzReport:
    """Run *trials* sampled scenarios under the oracle.

    Every failing trial is (optionally) minimized and written to
    *artifact_dir* as a repro artifact.  *progress* is invoked after
    each trial with ``(index, outcome)``.
    """
    report = FuzzReport(trials=trials, seed=seed)
    for index in range(trials):
        spec = sample_spec(seed, index)
        outcome = run_spec(spec)
        report.records_checked += outcome.records_checked
        report.events_fired += outcome.events_fired
        if outcome.failed:
            if minimize:
                # Each accepted shrink was already run and verified to
                # fail identically, so the minimizer's outcome is final
                # — no re-run needed (None means nothing shrank and the
                # original outcome stands).
                _spec, minimized_outcome, runs = minimize_spec(
                    spec, outcome.failure_key
                )
                report.minimization_runs += runs
                if minimized_outcome is not None:
                    outcome = minimized_outcome
            failure = artifact_payload(outcome, seed, index)
            report.failures.append(failure)
            if artifact_dir is not None:
                report.artifacts.append(write_artifact(failure, artifact_dir))
        if progress is not None:
            progress(index, outcome)
    return report
