"""Protocol validation: runtime invariant oracle + scenario fuzzing.

The safety net every other subsystem runs inside:

* :class:`InvariantOracle` (:mod:`repro.validate.oracle`) subscribes
  to a simulation's trace log and checks the protocol invariants of
  :mod:`repro.validate.invariants` — duplicate-free delivery, gapless
  per-receiver delivery, buffer conservation, the long-term quota,
  recovery liveness and FEC accounting — during any run.
* :func:`run_fuzz` (:mod:`repro.validate.fuzz`) samples random
  :class:`~repro.scenario.spec.ScenarioSpec` trees and runs each under
  the oracle, minimizing and persisting a repro artifact per failure.

Enable per run via ``MeasurementSpec(oracle=True)``, or from the CLI::

    rrmp-experiments validate run scale
    rrmp-experiments validate fuzz --trials 200 --seed 0
"""

from repro.validate.fuzz import (
    FuzzReport,
    TrialOutcome,
    load_artifact_spec,
    minimize_spec,
    run_fuzz,
    run_spec,
    sample_spec,
)
from repro.validate.invariants import (
    Invariant,
    Violation,
    default_invariants,
)
from repro.validate.oracle import InvariantOracle

__all__ = [
    "FuzzReport",
    "Invariant",
    "InvariantOracle",
    "TrialOutcome",
    "Violation",
    "default_invariants",
    "load_artifact_spec",
    "minimize_spec",
    "run_fuzz",
    "run_spec",
    "sample_spec",
]
