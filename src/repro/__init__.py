"""repro — reproduction of *Optimizing Buffer Management for Reliable
Multicast* (Xiao, Birman, van Renesse; DSN 2002).

The package implements the RRMP randomized reliable multicast protocol
and its two-phase buffer-management algorithm (feedback-based
short-term buffering + randomized long-term buffering + bufferer
search), together with every substrate the paper's evaluation needs: a
discrete-event simulator, a region-hierarchy network model, baseline
buffering policies and the experiment harness that regenerates each
figure.

Quickstart
----------
>>> from repro import RrmpSimulation, single_region, FixedHolderCount
>>> sim = RrmpSimulation(single_region(50), seed=7,
...                      outcome=FixedHolderCount(5))
>>> _ = sim.sender.multicast()
>>> _ = sim.run(duration=500.0)
>>> sim.all_received(1)
True
"""

from repro.core import (
    BufferPolicy,
    FixedTimePolicy,
    NeverDiscardPolicy,
    NoBufferPolicy,
    TwoPhaseBufferPolicy,
)
from repro.net import (
    BernoulliOutcome,
    ConstantLatency,
    FixedHolderCount,
    FixedHolders,
    Hierarchy,
    HierarchicalLatency,
    PerfectOutcome,
    RegionCorrelatedOutcome,
    balanced_tree,
    chain,
    single_region,
    star,
)
from repro.fec import FecBlockDecoder, FecEncoder, Gf256Codec, XorCodec, make_codec
from repro.protocol import (
    FEC_OFF,
    FEC_PROACTIVE,
    FEC_REACTIVE,
    PAPER_SECTION4_CONFIG,
    DataMessage,
    ParityMessage,
    RrmpConfig,
    RrmpMember,
    RrmpSender,
    RrmpSimulation,
    two_phase_policy_factory,
)
# NOTE: the `scenario()` builder function is deliberately NOT re-exported
# here — a top-level `scenario` name would shadow the `repro.scenario`
# submodule attribute.  Use ``from repro.scenario import scenario``.
from repro.scenario import (
    ScenarioBuilder,
    ScenarioSpec,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.sim import RandomStreams, Simulator, TraceLog

__version__ = "1.1.0"

__all__ = [
    "BernoulliOutcome",
    "BufferPolicy",
    "ConstantLatency",
    "DataMessage",
    "FEC_OFF",
    "FEC_PROACTIVE",
    "FEC_REACTIVE",
    "FecBlockDecoder",
    "FecEncoder",
    "FixedHolderCount",
    "FixedHolders",
    "FixedTimePolicy",
    "Gf256Codec",
    "Hierarchy",
    "HierarchicalLatency",
    "NeverDiscardPolicy",
    "NoBufferPolicy",
    "PAPER_SECTION4_CONFIG",
    "ParityMessage",
    "PerfectOutcome",
    "RandomStreams",
    "RegionCorrelatedOutcome",
    "RrmpConfig",
    "RrmpMember",
    "RrmpSender",
    "RrmpSimulation",
    "ScenarioBuilder",
    "ScenarioSpec",
    "Simulator",
    "TraceLog",
    "TwoPhaseBufferPolicy",
    "XorCodec",
    "balanced_tree",
    "build_scenario",
    "chain",
    "get_scenario",
    "make_codec",
    "register_scenario",
    "scenario_names",
    "single_region",
    "star",
    "two_phase_policy_factory",
    "__version__",
]
