"""The ``live`` CLI subcommand: real-UDP runs of declarative scenarios.

Wired into the ``rrmp`` / ``rrmp-experiments`` entry point::

    rrmp live run wan_burst_loss --speedup 4 --json
    rrmp live daemon steady_state --interval 500
    rrmp live diff initial_holders --speedup 2 --artifacts out/
    rrmp live node spec.json --nodes 0,1,2 --directory dir.json

``run`` materializes one scenario over loopback UDP and prints its
summary; ``daemon`` keeps a session alive and emits one JSON metrics
snapshot per line at a fixed virtual interval (buffer occupancy,
long-term count, recovery latency, goodput); ``diff`` runs the
sim/real differential harness and fails on digest mismatch or oracle
violations; ``node`` hosts a shard of the group — the member ids in
``--nodes`` — using a directory file mapping every node id to its
owner's ``[host, port]`` (one ``node`` process per shard makes a
multi-process deployment).

Exit codes: 0 = clean, 1 = violations or digest mismatch, 2 = usage
error.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import Dict, Set

from repro.live.differential import run_differential
from repro.live.session import LiveSession, run_spec_live
from repro.metrics.runreport import RunReport
from repro.live.transport import Address
from repro.net.topology import NodeId
from repro.scenario.registry import get_scenario
from repro.scenario.spec import ScenarioSpec
from repro.validate.oracle import InvariantOracle


def add_live_parser(commands) -> None:
    """Attach the ``live`` subcommand tree to *commands*."""
    parser = commands.add_parser(
        "live",
        help="run scenarios over real UDP: loopback runs, daemons, "
             "sim/real differentials, sharded nodes",
    )
    actions = parser.add_subparsers(dest="live_command", required=True)

    run = actions.add_parser(
        "run", help="run one scenario over loopback UDP under the oracle",
    )
    _add_common(run)
    run.add_argument("--json", action="store_true", dest="as_json",
                     help="print the summary as JSON")

    daemon = actions.add_parser(
        "daemon", help="long-running session emitting JSON metrics "
                       "snapshots, one per line",
    )
    _add_common(daemon)
    daemon.add_argument("--interval", type=float, default=1000.0, metavar="MS",
                        help="virtual ms between snapshots (default: 1000)")
    daemon.add_argument("--snapshots", type=int, default=None, metavar="N",
                        help="stop after N snapshots (default: run the "
                             "spec's full measurement plan)")

    diff = actions.add_parser(
        "diff", help="run one scenario in sim and live, compare "
                     "normalized delivery digests",
    )
    _add_common(diff)
    diff.add_argument("--json", action="store_true", dest="as_json",
                      help="print the full differential report as JSON")
    diff.add_argument("--artifacts", default=None, metavar="DIR",
                      help="on failure, write the report JSON into DIR")

    node = actions.add_parser(
        "node", help="host a shard of the group (multi-process deployments)",
    )
    _add_common(node)
    node.add_argument("--nodes", required=True, metavar="IDS",
                      help="comma-separated member ids this process hosts")
    node.add_argument("--directory", required=True, metavar="FILE",
                      help="JSON file mapping every node id to [host, port]")
    node.add_argument("--bind", default="127.0.0.1:0", metavar="HOST:PORT",
                      help="address to bind (default: 127.0.0.1:0)")
    node.add_argument("--hold", type=float, default=0.0, metavar="SECONDS",
                      help="real seconds to wait after binding before "
                           "virtual time starts; start every shard "
                           "within this window so their clocks line up "
                           "(default: 0, start immediately)")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("scenario", help="registered scenario name or path "
                                         "to a ScenarioSpec JSON file")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the spec's master seed")
    parser.add_argument("--speedup", type=float, default=1.0,
                        help="virtual-to-real time ratio (default: 1.0; "
                             "higher is faster but needs CPU headroom)")


def main_live(args: argparse.Namespace) -> int:
    """Dispatch a parsed ``live`` invocation; returns the exit code."""
    try:
        spec = _resolve_scenario(args.scenario)
    except (KeyError, OSError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.seed is not None:
        spec = spec.with_(seed=args.seed)
    if args.speedup <= 0:
        print("error: --speedup must be > 0", file=sys.stderr)
        return 2
    command = args.live_command
    if command == "run":
        return _cmd_run(spec, args)
    if command == "daemon":
        return _cmd_daemon(spec, args)
    if command == "diff":
        return _cmd_diff(spec, args)
    if command == "node":
        return _cmd_node(spec, args)
    return 2  # pragma: no cover - argparse enforces the choices


def _resolve_scenario(name: str) -> ScenarioSpec:
    """A registry name, or a path to a ScenarioSpec JSON file."""
    try:
        return get_scenario(name)
    except KeyError:
        if os.path.exists(name):
            with open(name, encoding="utf-8") as handle:
                return ScenarioSpec.from_json(handle.read())
        raise


def _cmd_run(spec: ScenarioSpec, args: argparse.Namespace) -> int:
    oracle = InvariantOracle()
    session = asyncio.run(run_spec_live(spec, speedup=args.speedup,
                                        oracle=oracle))
    summary = session.summary()
    report = RunReport(
        kind="live", scenario=spec.name, seed=spec.seed,
        metrics=summary, oracle=oracle.report_dict(),
        failed=(oracle.violation_count > 0
                or summary["reliability_violations"] > 0),
    )
    if args.as_json:
        print(report.to_json())
        return report.exit_code
    print(f"== live {spec.name} (seed {spec.seed}, "
          f"speedup {args.speedup:g}) ==")
    for key in ("members", "alive_members", "messages", "delivered_fraction",
                "recoveries", "mean_recovery_latency_ms",
                "reliability_violations", "control_messages",
                "data_messages", "send_dropped", "time_ms"):
        print(f"  {key.replace('_', ' ').ljust(26)} {summary[key]}")
    print(f"  oracle violations          {oracle.violation_count}")
    return report.exit_code


def _cmd_daemon(spec: ScenarioSpec, args: argparse.Namespace) -> int:
    if args.interval <= 0:
        print("error: --interval must be > 0", file=sys.stderr)
        return 2

    async def _daemon() -> int:
        session = LiveSession(spec, speedup=args.speedup)
        await session.start()
        runner = asyncio.ensure_future(session.run())
        emitted = 0
        previous = None
        try:
            while not runner.done():
                await session.sim.sleep(args.interval)
                previous = session.snapshot(previous)
                print(json.dumps(previous.to_dict()), flush=True)
                emitted += 1
                if args.snapshots is not None and emitted >= args.snapshots:
                    break
            if runner.done():
                runner.result()  # surface run() errors
        finally:
            runner.cancel()
            await session.close()
        return 1 if session.violation_count() > 0 else 0

    try:
        return asyncio.run(_daemon())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        return 0


def _cmd_diff(spec: ScenarioSpec, args: argparse.Namespace) -> int:
    result = run_differential(spec, speedup=args.speedup)
    report = result.to_dict()
    if args.as_json:
        print(json.dumps(report))
    else:
        print(f"== diff {spec.name} (seed {result.seed}, "
              f"speedup {args.speedup:g}) ==")
        print(f"  sim  digest {result.sim.digest[:16]}  "
              f"delivered={len(result.sim.delivered)} "
              f"violations={len(result.sim.violations)} "
              f"oracle={result.sim.oracle_violations}")
        print(f"  live digest {result.live.digest[:16]}  "
              f"delivered={len(result.live.delivered)} "
              f"violations={len(result.live.violations)} "
              f"oracle={result.live.oracle_violations}")
        print("  MATCH" if result.digests_match else "  DIGEST MISMATCH")
    if not result.ok and args.artifacts is not None:
        os.makedirs(args.artifacts, exist_ok=True)
        path = os.path.join(
            args.artifacts,
            f"diff_{spec.name}_{result.spec_digest[:12]}.json",
        )
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
        print(f"  artifact: {path}", file=sys.stderr)
    return 0 if result.ok else 1


def _parse_nodes(text: str) -> Set[NodeId]:
    try:
        return {int(part) for part in text.split(",") if part.strip()}
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--nodes expects comma-separated integers, got {text!r}")


def _parse_bind(text: str) -> Address:
    host, _, port = text.rpartition(":")
    if not host:
        raise ValueError(f"--bind expects HOST:PORT, got {text!r}")
    return (host, int(port))


def _load_directory(path: str) -> Dict[NodeId, Address]:
    with open(path, encoding="utf-8") as handle:
        raw = json.load(handle)
    return {int(node): (str(addr[0]), int(addr[1]))
            for node, addr in raw.items()}


def _cmd_node(spec: ScenarioSpec, args: argparse.Namespace) -> int:
    try:
        nodes = _parse_nodes(args.nodes)
        bind = _parse_bind(args.bind)
        directory = _load_directory(args.directory)
    except (OSError, ValueError, argparse.ArgumentTypeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    missing = nodes - set(directory)
    if missing:
        print(f"error: --nodes {sorted(missing)} absent from the directory",
              file=sys.stderr)
        return 2

    async def _node() -> int:
        session = LiveSession(spec, speedup=args.speedup, local_nodes=nodes,
                              directory=directory, bind=bind,
                              hold=args.hold > 0)
        address = await session.start()
        print(json.dumps({"bound": list(address),
                          "nodes": sorted(nodes)}), flush=True)
        if args.hold > 0:
            await asyncio.sleep(args.hold)
            session.release_clock()
        try:
            await session.run()
        finally:
            await session.close()
        summary = session.summary()
        print(json.dumps(summary), flush=True)
        return 1 if summary["reliability_violations"] > 0 else 0

    try:
        return asyncio.run(_node())
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        return 0


__all__ = ["add_live_parser", "main_live"]
