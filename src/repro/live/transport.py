"""Asyncio-UDP implementation of the runtime :class:`~repro.live.runtime.Transport`.

One :class:`LiveTransport` owns one UDP socket and carries every member
registered with it; frames tag ``src``/``dst`` node ids (see
:mod:`repro.live.codec`), so a whole group can run loopback through a
single socket, or be sharded across processes via a *directory* mapping
node ids to ``(host, port)`` addresses.

The send path deliberately mirrors :class:`repro.net.transport.Network`
step for step — account the send, check membership (``send_dropped``),
consult the loss shim, apply the latency shim, deliver — so a
:class:`~repro.scenario.spec.ScenarioSpec`'s ``LossSpec`` drives a real
run unmodified:

* **Loss shim**: the same :class:`~repro.net.loss.LossModel` objects
  (e.g. :class:`~repro.net.loss.GilbertElliottLoss`) decide drops
  before the datagram is written, drawing from the ``("net", "loss")``
  stream exactly like the simulated network.
* **Latency shim**: the spec's :class:`~repro.net.latency.LatencyModel`
  delays the socket write by the modelled one-way time (in virtual
  milliseconds on the :class:`~repro.live.clock.LiveClock`), so
  protocol timers see the topology the spec describes rather than bare
  loopback latency.  A zero-delay model degenerates to an immediate
  write.

Inbound datagrams that fail to decode are counted and rejected whole
(:class:`~repro.live.codec.CodecError` never reaches protocol code).
"""

from __future__ import annotations

import asyncio
import socket
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.live.clock import LiveClock
from repro.live.codec import MAX_DATAGRAM, CodecError, decode_frame, encode_frame
from repro.net.latency import LatencyModel
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet, payload_kind, payload_size, payload_type_name
from repro.net.topology import NodeId
from repro.net.transport import Endpoint, NetworkStats
from repro.sim import RandomStreams, TraceLog

Address = Tuple[str, int]

#: Requested socket buffer size.  Frames are a few hundred bytes, so
#: this is headroom for tens of thousands of in-flight datagrams.
SOCKET_BUFFER_BYTES = 4 * 1024 * 1024

#: Datagrams drained per readability callback.  asyncio's own datagram
#: transport reads exactly one per event-loop iteration, which starves
#: the receive path whenever timer callbacks dominate an iteration (a
#: hundred members all firing recovery rounds): repairs then arrive
#: after the 40 ms idle discard and recovery spirals.  Draining a batch
#: keeps receives proportional to load.
READ_BATCH = 512


class LiveTransport:
    """Delivers protocol messages between members over real UDP.

    Parameters mirror :class:`repro.net.transport.Network` (clock in
    place of the simulator); *directory* optionally maps node ids to
    peer addresses for multi-process deployments.  Without a directory
    every destination is assumed local to this socket (loopback mode).
    """

    def __init__(
        self,
        clock: LiveClock,
        latency: LatencyModel,
        loss: Optional[LossModel] = None,
        streams: Optional[RandomStreams] = None,
        trace: Optional[TraceLog] = None,
        directory: Optional[Dict[NodeId, Address]] = None,
    ) -> None:
        self.clock = clock
        self.latency = latency
        self.loss = loss if loss is not None else NoLoss()
        bind_clock = getattr(self.loss, "bind_clock", None)
        if bind_clock is not None:
            bind_clock(clock)  # rate-sensitive models need a time source
        self._loss_rng = (streams or RandomStreams(0)).stream("net", "loss")
        self.trace = trace
        self.stats = NetworkStats()
        #: Inbound datagrams rejected by the codec (malformed/foreign).
        self.recv_rejected = 0
        #: Inbound frames addressed to a node not registered here.
        self.recv_unknown = 0
        self.directory = directory
        self._endpoints: Dict[NodeId, Endpoint] = {}
        self._sock: Optional[socket.socket] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._local_addr: Optional[Address] = None

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------
    async def open(self, host: str = "127.0.0.1", port: int = 0) -> Address:
        """Bind the UDP socket; returns the bound ``(host, port)``."""
        if self._sock is not None:
            raise RuntimeError("transport already open")
        self._loop = asyncio.get_running_loop()
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.setblocking(False)
        # Protocol rounds are bursty — every recovering member fires
        # within the same timer window, and at high clock speedups those
        # bursts land in real microseconds.  The default UDP receive
        # buffer silently sheds such bursts (drops the loss shim never
        # sees), so ask for room for tens of thousands of frames; the
        # kernel clamps to its own maximum.
        for option in (socket.SO_RCVBUF, socket.SO_SNDBUF):
            try:
                sock.setsockopt(socket.SOL_SOCKET, option, SOCKET_BUFFER_BYTES)
            except OSError:  # pragma: no cover - platform-dependent
                pass
        sock.bind((host, port))
        self._sock = sock
        self._local_addr = sock.getsockname()[:2]
        self._loop.add_reader(sock.fileno(), self._on_readable)
        return self._local_addr

    def close(self) -> None:
        """Close the socket.  Idempotent."""
        if self._sock is not None:
            if self._loop is not None:
                self._loop.remove_reader(self._sock.fileno())
            self._sock.close()
            self._sock = None

    @property
    def local_address(self) -> Optional[Address]:
        """Bound address, or ``None`` before :meth:`open`."""
        return self._local_addr

    # ------------------------------------------------------------------
    # Registration (the Transport protocol surface)
    # ------------------------------------------------------------------
    def register(self, node_id: NodeId, endpoint: Endpoint) -> None:
        """Attach *endpoint* so it can receive frames addressed to it."""
        self._endpoints[node_id] = endpoint

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node (frames in flight to it are dropped on arrival)."""
        self._endpoints.pop(node_id, None)

    def is_registered(self, node_id: NodeId) -> bool:
        """Whether *node_id* currently has an attached endpoint."""
        return node_id in self._endpoints

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def unicast(self, src: NodeId, dst: NodeId, payload: Any) -> Optional[Packet]:
        """Send *payload* from *src* to *dst* over UDP."""
        return self._send(src, dst, payload, group=None)

    def multicast(
        self,
        src: NodeId,
        dsts: Iterable[NodeId],
        payload: Any,
        group: str = "group",
        include_sender: bool = False,
    ) -> int:
        """Fan *payload* out as one datagram per receiver."""
        new_message = getattr(self.loss, "new_message", None)
        if new_message is not None:
            new_message()
        scheduled = 0
        for dst in dsts:
            if dst == src and not include_sender:
                continue
            if self._send(src, dst, payload, group=group) is not None:
                scheduled += 1
        return scheduled

    def rtt(self, src: NodeId, dst: NodeId) -> float:
        """Round-trip estimate from the modelled latency (virtual ms)."""
        return self.latency.rtt(src, dst)

    def _send(self, src: NodeId, dst: NodeId, payload: Any,
              group: Optional[str]) -> Optional[Packet]:
        kind = payload_kind(payload)
        size = payload_size(payload)
        type_name = payload_type_name(payload)
        self.stats.record_send(type_name, kind, size)
        now = self.clock.now
        if self.trace is not None:
            self.trace.emit(now, "packet_sent", src=src, dst=dst,
                            type=type_name, packet_kind=kind)
        addr = self._address_of(dst)
        if addr is None:
            # No endpoint here and no directory entry: the destination
            # left, crashed, or was never deployed.  Same observable
            # outcome as the simulated network's membership check.
            self.stats.dropped += 1
            self.stats.send_dropped += 1
            if self.trace is not None:
                self.trace.emit(now, "send_dropped", src=src, dst=dst,
                                type=type_name, reason="unregistered")
            return None
        if self.loss.is_lost(src, dst, kind, self._loss_rng):
            self.stats.dropped += 1
            if self.trace is not None:
                self.trace.emit(now, "packet_dropped", src=src, dst=dst,
                                type=type_name)
            return None
        delay = self.latency.one_way(src, dst)
        packet = Packet(src=src, dst=dst, payload=payload, kind=kind,
                        send_time=now, deliver_time=now + delay,
                        multicast_group=group)
        frame = encode_frame(src, dst, payload, send_time=now, group=group)
        if delay > 0:
            self.clock.after(delay, self._transmit, frame, addr)
        else:
            self._transmit(frame, addr)
        return packet

    def _address_of(self, dst: NodeId) -> Optional[Address]:
        """Where datagrams for *dst* go; ``None`` means drop the send."""
        if self.directory is not None:
            addr = self.directory.get(dst)
            if addr is None:
                return None
            # A local destination must also still be registered — a
            # departed co-located member keeps sim semantics.
            if addr == self._local_addr and dst not in self._endpoints:
                return None
            return addr
        if dst not in self._endpoints:
            return None
        assert self._local_addr is not None, "open() the transport before sending"
        return self._local_addr

    def _transmit(self, frame: bytes, addr: Address) -> None:
        if self._sock is None:
            return  # closed while the latency shim held the frame
        try:
            self._sock.sendto(frame, addr)
        except (BlockingIOError, InterruptedError):  # pragma: no cover
            # Kernel send buffer full: indistinguishable from wire loss
            # at the receiver, so account it like one.
            self.stats.dropped += 1
        except OSError:  # pragma: no cover - peer gone, route down, ...
            self.stats.dropped += 1

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_readable(self) -> None:
        """Drain up to :data:`READ_BATCH` datagrams from the socket.

        Registered with ``loop.add_reader``; called once per event-loop
        iteration while the socket has data.
        """
        sock = self._sock
        if sock is None:
            return
        for _ in range(READ_BATCH):
            try:
                data, addr = sock.recvfrom(MAX_DATAGRAM)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:  # pragma: no cover - closing race
                break
            self.datagram_received(data, addr)

    def datagram_received(self, data: bytes, addr: Address) -> None:
        """Decode one inbound datagram and hand it to its endpoint."""
        try:
            frame = decode_frame(data)
        except CodecError:
            self.recv_rejected += 1
            if self.trace is not None:
                self.trace.emit(self.clock.now, "recv_rejected",
                                peer=list(addr), size=len(data))
            return
        endpoint = self._endpoints.get(frame.dst)
        if endpoint is None:
            # Departed while in flight, or a stale directory points a
            # peer at us: mirrors the simulated in-flight drop.
            self.recv_unknown += 1
            self.stats.dropped += 1
            return
        now = self.clock.now
        packet = Packet(src=frame.src, dst=frame.dst, payload=frame.payload,
                        kind=payload_kind(frame.payload),
                        send_time=frame.send_time, deliver_time=now,
                        multicast_group=frame.group)
        self.stats.delivered += 1
        if self.trace is not None:
            self.trace.emit(now, "packet_delivered", src=packet.src,
                            dst=packet.dst,
                            type=payload_type_name(packet.payload))
        endpoint.on_packet(packet)
