"""Live asyncio-UDP runtime for RRMP.

The simulator validates the protocol; this package *deploys* it: the
same :class:`~repro.protocol.member.RrmpMember` code runs over real UDP
sockets, driven by a wall-clock :class:`~repro.live.clock.LiveClock`
instead of the discrete-event engine.  The member-facing surface both
runtimes implement is captured by the structural protocols of
:mod:`repro.live.runtime`; :mod:`repro.live.session` materializes any
:class:`~repro.scenario.spec.ScenarioSpec` over loopback UDP (or a
multi-process node directory), and :mod:`repro.live.differential` runs
the same spec in both worlds and compares normalized delivery digests
under the invariant oracle.
"""

from repro.live.clock import LiveClock, LiveHandle
from repro.live.codec import (
    CodecError,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
)
from repro.live.differential import (
    DifferentialResult,
    delivery_digest,
    delivery_sets,
    run_differential,
)
from repro.live.runtime import Clock, Handle, Transport
from repro.live.session import LiveSession, run_spec_live
from repro.live.transport import LiveTransport

__all__ = [
    "Clock",
    "CodecError",
    "DifferentialResult",
    "Handle",
    "LiveClock",
    "LiveHandle",
    "LiveSession",
    "LiveTransport",
    "Transport",
    "decode_frame",
    "decode_message",
    "delivery_digest",
    "delivery_sets",
    "encode_frame",
    "encode_message",
    "run_differential",
    "run_spec_live",
]
