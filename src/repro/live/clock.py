"""Wall-clock implementation of the runtime :class:`~repro.live.runtime.Clock`.

:class:`LiveClock` maps the protocol's virtual milliseconds onto an
asyncio event loop.  A *speedup* factor scales the mapping: at
``speedup=1`` one virtual millisecond is one real millisecond; at
``speedup=10`` the run executes ten times faster than real time (the
loopback differential tests use this so a 2.5-second scenario horizon
finishes in a quarter of a second).  All protocol timers — recovery
rounds, idle thresholds, session heartbeats — are expressed in virtual
time, so a scaled run exercises exactly the same schedule, compressed.

Unlike :class:`repro.sim.Simulator`, which raises on scheduling in the
past, the live clock clamps past deadlines to "fire as soon as
possible": real time keeps moving between computing a deadline and
scheduling it, so a hard error would turn slow hosts into crashes.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional, Set


class LiveHandle:
    """A scheduled callback on a :class:`LiveClock`.

    Mirrors the :class:`repro.sim.events.Event` surface that
    :class:`repro.sim.Timer` relies on: ``time``, ``seq``, ``pending``
    and ``cancel()``.
    """

    __slots__ = ("time", "seq", "_clock", "_timer", "_callback", "_args", "_done")

    def __init__(self, clock: "LiveClock", time: float, seq: int,
                 callback: Callable[..., None], args: tuple) -> None:
        self.time = time
        self.seq = seq
        self._clock = clock
        self._timer: Optional[asyncio.TimerHandle] = None
        self._callback: Optional[Callable[..., None]] = callback
        self._args = args
        self._done = False

    @property
    def pending(self) -> bool:
        """Whether the callback is still waiting to fire."""
        return not self._done

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called before the callback fired."""
        return self._done and self._callback is None and self._timer is None

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent and O(1)."""
        if self._done:
            return
        self._done = True
        if self._timer is not None:
            self._timer.cancel()
        self._timer = None
        self._callback = None
        self._args = ()
        self._clock._retire(self)

    def _fire(self) -> None:
        if self._done:
            return
        self._done = True
        callback, args = self._callback, self._args
        self._callback = None
        self._args = ()
        self._timer = None
        self._clock._fired(self)
        if callback is not None:
            callback(*args)


class LiveClock:
    """Virtual-millisecond clock over an asyncio event loop."""

    def __init__(self, speedup: float = 1.0, held: bool = False,
                 loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        if speedup <= 0:
            raise ValueError(f"speedup must be > 0, got {speedup!r}")
        self.speedup = speedup
        self._loop = loop
        self._epoch: Optional[float] = None
        self._seq = 0
        self._events_fired = 0
        self._live: Set[LiveHandle] = set()
        self._held = held
        self._deferred: list = []

    # ------------------------------------------------------------------
    # Loop binding
    # ------------------------------------------------------------------
    def _bind(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            self._loop = asyncio.get_running_loop()
        if self._epoch is None:
            self._epoch = self._loop.time()
        return self._loop

    # ------------------------------------------------------------------
    # Clock surface
    # ------------------------------------------------------------------
    @property
    def held(self) -> bool:
        """Whether the clock is frozen at time zero (setup phase)."""
        return self._held

    def release(self) -> None:
        """Start a held clock: time begins at zero *now*.

        Everything scheduled while held is scheduled for real at this
        point, with delays measured from the release instant.  A
        session holds its clock through construction and workload
        injection — building a hundred members takes real milliseconds,
        and letting the clock run through setup would eat into the
        protocol's first timers (a 40 ms idle threshold can expire
        before the last member even exists).  Mirrors the simulator,
        where arbitrarily much construction happens "at" t=0.
        """
        if not self._held:
            return
        loop = self._bind()
        self._held = False
        self._epoch = loop.time()
        deferred, self._deferred = self._deferred, []
        for handle in deferred:
            if handle.pending:
                real = self.real_delay(handle.time - self.now)
                handle._timer = loop.call_later(max(0.0, real), handle._fire)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds since the epoch."""
        if self._held:
            return 0.0
        loop = self._bind()
        assert self._epoch is not None
        return (loop.time() - self._epoch) * 1000.0 * self.speedup

    @property
    def pending_events(self) -> int:
        """Live (not fired, not cancelled) scheduled callbacks."""
        return len(self._live)

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far."""
        return self._events_fired

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> LiveHandle:
        """Schedule *callback(*args)* *delay* virtual ms from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        return self.at(self.now + delay, callback, *args)

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> LiveHandle:
        """Schedule at absolute virtual *time* (past times fire at once)."""
        self._seq += 1
        return self._schedule(time, self._seq, callback, args)

    def reserve_seq(self) -> int:
        """Consume the next scheduling sequence number (Timer re-arm)."""
        self._seq += 1
        return self._seq

    def at_reserved(self, time: float, seq: int, callback: Callable[..., None],
                    *args: Any) -> LiveHandle:
        """Schedule under a previously reserved sequence number."""
        return self._schedule(time, seq, callback, args)

    def _schedule(self, time: float, seq: int, callback: Callable[..., None],
                  args: tuple) -> LiveHandle:
        handle = LiveHandle(self, time, seq, callback, args)
        if self._held:
            self._deferred.append(handle)
        else:
            loop = self._bind()
            real_delay = self.real_delay(time - self.now)
            handle._timer = loop.call_later(max(0.0, real_delay), handle._fire)
        self._live.add(handle)
        return handle

    # ------------------------------------------------------------------
    # Handle bookkeeping
    # ------------------------------------------------------------------
    def _fired(self, handle: LiveHandle) -> None:
        self._events_fired += 1
        self._live.discard(handle)

    def _retire(self, handle: LiveHandle) -> None:
        self._live.discard(handle)

    def cancel_all(self) -> int:
        """Cancel every live handle (teardown); returns how many."""
        live = list(self._live)
        for handle in live:
            handle.cancel()
        return len(live)

    # ------------------------------------------------------------------
    # Conversions and async helpers
    # ------------------------------------------------------------------
    def real_delay(self, virtual_ms: float) -> float:
        """Real seconds corresponding to *virtual_ms* virtual milliseconds."""
        return (virtual_ms / 1000.0) / self.speedup

    async def sleep(self, virtual_ms: float) -> None:
        """Let *virtual_ms* of virtual time pass."""
        await asyncio.sleep(max(0.0, self.real_delay(virtual_ms)))

    async def sleep_until(self, virtual_time: float) -> None:
        """Sleep until the virtual clock reads at least *virtual_time*."""
        await self.sleep(virtual_time - self.now)
