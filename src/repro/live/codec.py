"""Wire codec for RRMP messages over UDP.

Every message type in :data:`repro.protocol.messages.WIRE_MESSAGE_TYPES`
encodes to a tagged JSON object; a datagram is a small frame that adds
addressing (the live transport multiplexes every co-located member over
one socket, so ``src``/``dst`` ride in the frame, not the UDP header)
behind a magic/version prefix:

    b"RRMP1" + json({"src": ..., "dst": ..., "sent": ..., "group": ...,
                     "msg": {"t": "DataMessage", "seq": 7, ...}})

Design points:

* **Explicit schemas, strict decoding.**  Each type lists its wire
  fields with a value codec; unknown types, missing fields, extra
  fields and wrong value shapes all raise :class:`CodecError` — a
  malformed datagram must never surface as a half-built message.
* **Bytes are base64** (``ParityMessage.shard``); tuples are JSON
  arrays restored to tuples on decode.
* **Nested messages** (``Repair.data``, ``HandoffMessage.data``) are
  encoded recursively and restricted to the payload-bearing types.
* ``kind``/``wire_size`` are class invariants (``repr=False`` defaults)
  and stay off the wire.

JSON keeps the codec dependency-free and the differential harness's
captures human-readable; at the paper's message sizes (1 KB nominal
data packets) compactness is not the constraint.
"""

from __future__ import annotations

import base64
import binascii
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.protocol.messages import (
    REPAIR_LOCAL,
    REPAIR_REGIONAL,
    REPAIR_RELAY,
    REPAIR_REMOTE,
    DataMessage,
    FeedbackReport,
    HandoffMessage,
    HaveReply,
    LocalRequest,
    ParityMessage,
    RemoteRequest,
    Repair,
    SearchRequest,
    SessionMessage,
)

MAGIC = b"RRMP1"

#: Hard ceiling on accepted datagram size; far above any real frame
#: (nominal data payloads are 1 KB) but small enough that a hostile or
#: corrupt blob cannot make the JSON parser chew megabytes.
MAX_DATAGRAM = 64 * 1024


class CodecError(ValueError):
    """A datagram or message that cannot be (de)coded."""


# ----------------------------------------------------------------------
# Value codecs: encode python -> json-ready, decode json -> python.
# Every decoder validates shape and raises CodecError.
# ----------------------------------------------------------------------
def _enc_identity(value: Any) -> Any:
    return value


def _dec_int(value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise CodecError(f"expected an integer, got {value!r}")
    return value


def _dec_str(value: Any) -> str:
    if not isinstance(value, str):
        raise CodecError(f"expected a string, got {value!r}")
    return value


def _dec_float(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise CodecError(f"expected a number, got {value!r}")
    return float(value)


def _enc_json_value(value: Any) -> Any:
    try:
        json.dumps(value)
    except (TypeError, ValueError) as error:
        raise CodecError(f"payload is not JSON-serializable: {error}") from error
    return value


def _dec_json_value(value: Any) -> Any:
    return value


def _enc_int_tuple(value: Tuple[int, ...]) -> list:
    return list(value)


def _dec_int_tuple(value: Any) -> Tuple[int, ...]:
    if not isinstance(value, list):
        raise CodecError(f"expected a list, got {value!r}")
    return tuple(_dec_int(item) for item in value)


def _enc_bytes(value: bytes) -> str:
    return base64.b64encode(value).decode("ascii")


def _dec_bytes(value: Any) -> bytes:
    if not isinstance(value, str):
        raise CodecError(f"expected base64 text, got {value!r}")
    try:
        return base64.b64decode(value.encode("ascii"), validate=True)
    except (binascii.Error, UnicodeEncodeError) as error:
        raise CodecError(f"invalid base64: {error}") from error


_REPAIR_SCOPES = frozenset(
    {REPAIR_LOCAL, REPAIR_REMOTE, REPAIR_REGIONAL, REPAIR_RELAY}
)


def _dec_scope(value: Any) -> str:
    scope = _dec_str(value)
    if scope not in _REPAIR_SCOPES:
        raise CodecError(f"unknown repair scope {scope!r}")
    return scope


def _enc_nested(value: Any) -> Dict[str, Any]:
    if not isinstance(value, (DataMessage, ParityMessage)):
        raise CodecError(
            f"nested message must be DataMessage or ParityMessage, "
            f"got {type(value).__name__}"
        )
    return encode_message(value)


def _dec_nested(value: Any) -> Any:
    message = decode_message(value)
    if not isinstance(message, (DataMessage, ParityMessage)):
        raise CodecError(
            f"nested message must be DataMessage or ParityMessage, "
            f"got {type(message).__name__}"
        )
    return message


# ----------------------------------------------------------------------
# Per-type schemas: field name -> (encoder, decoder).
# ----------------------------------------------------------------------
_FieldCodec = Tuple[Callable[[Any], Any], Callable[[Any], Any]]

_SCHEMAS: Dict[str, Tuple[type, Dict[str, _FieldCodec]]] = {
    "DataMessage": (DataMessage, {
        "seq": (_enc_identity, _dec_int),
        "sender": (_enc_identity, _dec_int),
        "payload": (_enc_json_value, _dec_json_value),
    }),
    "LocalRequest": (LocalRequest, {
        "seq": (_enc_identity, _dec_int),
        "requester": (_enc_identity, _dec_int),
    }),
    "RemoteRequest": (RemoteRequest, {
        "seq": (_enc_identity, _dec_int),
        "requester": (_enc_identity, _dec_int),
    }),
    "Repair": (Repair, {
        "data": (_enc_nested, _dec_nested),
        "responder": (_enc_identity, _dec_int),
        "scope": (_enc_identity, _dec_scope),
    }),
    "ParityMessage": (ParityMessage, {
        "block_id": (_enc_identity, _dec_int),
        "index": (_enc_identity, _dec_int),
        "r": (_enc_identity, _dec_int),
        "block_seqs": (_enc_int_tuple, _dec_int_tuple),
        "shard": (_enc_bytes, _dec_bytes),
        "sender": (_enc_identity, _dec_int),
    }),
    "SessionMessage": (SessionMessage, {
        "sender": (_enc_identity, _dec_int),
        "max_seq": (_enc_identity, _dec_int),
    }),
    "SearchRequest": (SearchRequest, {
        "seq": (_enc_identity, _dec_int),
        "waiters": (_enc_int_tuple, _dec_int_tuple),
        "forwarder": (_enc_identity, _dec_int),
        "hops": (_enc_identity, _dec_int),
    }),
    "HaveReply": (HaveReply, {
        "seq": (_enc_identity, _dec_int),
        "owner": (_enc_identity, _dec_int),
    }),
    "HandoffMessage": (HandoffMessage, {
        "data": (_enc_nested, _dec_nested),
        "from_member": (_enc_identity, _dec_int),
    }),
    "FeedbackReport": (FeedbackReport, {
        "receiver": (_enc_identity, _dec_int),
        "loss_estimate": (_enc_identity, _dec_float),
        "rtt_ms": (_enc_identity, _dec_float),
        "max_seq": (_enc_identity, _dec_int),
        "received": (_enc_identity, _dec_int),
    }),
}


def encode_message(message: Any) -> Dict[str, Any]:
    """Encode a protocol message into a tagged, JSON-ready dict."""
    type_name = type(message).__name__
    schema = _SCHEMAS.get(type_name)
    if schema is None or not isinstance(message, schema[0]):
        raise CodecError(f"cannot encode message type {type_name!r}")
    encoded: Dict[str, Any] = {"t": type_name}
    for name, (encode, _decode) in schema[1].items():
        encoded[name] = encode(getattr(message, name))
    return encoded


def decode_message(obj: Any) -> Any:
    """Decode a tagged dict back into a protocol message (strict)."""
    if not isinstance(obj, dict):
        raise CodecError(f"message must be an object, got {type(obj).__name__}")
    type_name = obj.get("t")
    if not isinstance(type_name, str):
        raise CodecError("message is missing its type tag 't'")
    schema = _SCHEMAS.get(type_name)
    if schema is None:
        raise CodecError(f"unknown message type {type_name!r}")
    message_type, fields = schema
    extra = set(obj) - set(fields) - {"t"}
    if extra:
        raise CodecError(
            f"{type_name} has unexpected fields {sorted(extra)!r}"
        )
    kwargs: Dict[str, Any] = {}
    for name, (_encode, decode) in fields.items():
        if name not in obj:
            raise CodecError(f"{type_name} is missing field {name!r}")
        try:
            kwargs[name] = decode(obj[name])
        except CodecError as error:
            raise CodecError(f"{type_name}.{name}: {error}") from error
    return message_type(**kwargs)


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Frame:
    """One decoded datagram: addressing plus the carried message."""

    src: int
    dst: int
    send_time: float
    payload: Any
    group: Optional[str] = None


def encode_frame(src: int, dst: int, payload: Any, send_time: float,
                 group: Optional[str] = None) -> bytes:
    """Serialize one datagram: ``MAGIC`` + canonical JSON frame."""
    frame = {
        "src": src,
        "dst": dst,
        "sent": send_time,
        "group": group,
        "msg": encode_message(payload),
    }
    body = json.dumps(frame, sort_keys=True, separators=(",", ":"))
    data = MAGIC + body.encode("utf-8")
    if len(data) > MAX_DATAGRAM:
        raise CodecError(f"frame of {len(data)} bytes exceeds {MAX_DATAGRAM}")
    return data


def decode_frame(data: bytes) -> Frame:
    """Parse and validate one datagram; raises :class:`CodecError`."""
    if len(data) > MAX_DATAGRAM:
        raise CodecError(f"datagram of {len(data)} bytes exceeds {MAX_DATAGRAM}")
    if not data.startswith(MAGIC):
        raise CodecError("bad magic: not an RRMP datagram")
    try:
        obj = json.loads(data[len(MAGIC):].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"frame body is not valid JSON: {error}") from error
    if not isinstance(obj, dict):
        raise CodecError("frame body must be a JSON object")
    expected = {"src", "dst", "sent", "group", "msg"}
    if set(obj) != expected:
        raise CodecError(f"frame fields must be {sorted(expected)!r}, "
                         f"got {sorted(obj)!r}")
    src = _dec_int(obj["src"])
    dst = _dec_int(obj["dst"])
    sent = obj["sent"]
    if isinstance(sent, bool) or not isinstance(sent, (int, float)):
        raise CodecError(f"frame 'sent' must be a number, got {sent!r}")
    group = obj["group"]
    if group is not None and not isinstance(group, str):
        raise CodecError(f"frame 'group' must be a string or null, got {group!r}")
    return Frame(src=src, dst=dst, send_time=float(sent),
                 payload=decode_message(obj["msg"]), group=group)
