"""Materialize a :class:`~repro.scenario.spec.ScenarioSpec` over real UDP.

:class:`LiveSession` is the live-world sibling of
:func:`~repro.scenario.materialize.build_scenario`: the same spec tree,
the same construction helpers, the same named RNG streams — but members
run over an asyncio socket on a wall clock instead of the event engine.
Because the session exposes the :class:`~repro.protocol.rrmp.MemberGroup`
surface plus ``sim``/``trace``/``config``/``hierarchy``, everything
written against the simulation facade — the invariant oracle, traffic
generators, churn schedules, metrics snapshots — drives a live run
unchanged.

Two deployment shapes share the class:

* **Loopback** (default): every member of the hierarchy lives in this
  process on one socket.  Datagrams still traverse the kernel's UDP
  stack.  This is what the differential harness and CI smoke use.
* **Sharded**: ``local_nodes`` restricts which members are built here
  and ``directory`` maps every node id to its owner's address — one
  process per member (or per region) on real hosts.  Probe workloads
  and churn need the whole group and refuse to run sharded.

Determinism: protocol decisions (holder draws, long-term coin flips,
request targets) come from the same seeded streams as the simulator,
so a live run of a lossless spec delivers exactly the simulated
delivery set.  What *does* differ is physical timing and therefore the
interleaving of loss-model draws — the differential harness compares
normalized delivery digests, not wall-clock traces, for this reason.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Set

from repro.cc import (
    CongestionDriver,
    controller_for,
    install_feedback_reporters,
)
from repro.live.clock import LiveClock
from repro.live.transport import Address, LiveTransport
from repro.membership.churn import ChurnSchedule, random_churn
from repro.metrics.makespan import MakespanTracker
from repro.metrics.snapshot import DeliveryCounter, MetricsSnapshot, take_snapshot
from repro.net.ipmulticast import RegionCorrelatedOutcome
from repro.net.latency import HierarchicalLatency
from repro.net.topology import NodeId
from repro.protocol.config import FEC_OFF
from repro.protocol.member import RrmpMember
from repro.protocol.messages import DataMessage
from repro.protocol.rrmp import (
    MemberGroup,
    default_sender_node,
    two_phase_policy_factory,
)
from repro.protocol.sender import RrmpSender
from repro.scenario.materialize import (
    build_config,
    build_hierarchy,
    inject_detect_all,
    inject_search_probe,
    outcome_for,
    policy_factory_for,
    traffic_generator_for,
    transport_loss_for,
)
from repro.scenario.spec import ScenarioSpec
from repro.sim import RandomStreams, TraceLog
from repro.stability.detector import attach_stability

#: How often quiescence is polled, in real seconds.
_QUIESCENCE_POLL_S = 0.005

#: Consecutive unchanged polls required before the group counts as
#: quiescent — one poll could race a datagram sitting in the socket
#: buffer that is about to arm new timers.
_QUIESCENCE_SETTLE = 3


class LiveSession(MemberGroup):
    """One RRMP group running a scenario spec over asyncio UDP.

    Usage::

        session = LiveSession(spec, speedup=10.0)
        oracle = InvariantOracle().attach(session)
        await session.start()
        await session.run()
        oracle.finish()
        await session.close()

    (Or :func:`run_spec_live`, which sequences exactly that.)
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        speedup: float = 1.0,
        local_nodes: Optional[Set[NodeId]] = None,
        directory: Optional[Dict[NodeId, Address]] = None,
        bind: Address = ("127.0.0.1", 0),
        hold: bool = False,
    ) -> None:
        self.spec = spec
        #: With ``hold=True``, :meth:`start` leaves the clock frozen at
        #: zero until :meth:`release_clock` — how sharded deployments
        #: line up their epochs: every process binds and builds, *then*
        #: all release inside the same window.
        self.hold = hold
        self.hierarchy = build_hierarchy(spec.topology)
        self.hierarchy.validate()
        self.config = build_config(spec.policy, spec.fec, spec.congestion)
        self.streams = RandomStreams(spec.seed)
        self.trace = TraceLog(keep_records=spec.measurement.keep_trace)
        self.deliveries = DeliveryCounter(self.trace)
        # Same delivery-span metric the sim path surfaces; the trace
        # already has a subscriber (DeliveryCounter), so attaching one
        # more never changes the hot-path enabled state.
        self.makespan = MakespanTracker().attach(self.trace)
        # Held until start() finishes: building members and injecting
        # the workload takes real milliseconds, and a running clock
        # would feed that setup time straight into the protocol's first
        # timers (a 40 ms idle threshold can expire before the last
        # member even exists).  The simulator gets this for free — all
        # construction happens "at" t=0.
        self.sim = LiveClock(speedup=speedup, held=True)
        self.latency = HierarchicalLatency(
            self.hierarchy,
            intra_one_way=spec.topology.intra_one_way,
            inter_one_way=spec.topology.inter_one_way,
            inter_up_one_way=spec.topology.inter_up_one_way,
            inter_down_one_way=spec.topology.inter_down_one_way,
        )
        self.network = LiveTransport(
            self.sim,
            self.latency,
            loss=transport_loss_for(spec.loss),
            streams=self.streams,
            trace=None,
            directory=directory,
        )
        self._local_nodes = set(local_nodes) if local_nodes is not None else None
        self._bind = bind
        factory = policy_factory_for(spec.policy)
        self._policy_factory = (
            factory if factory is not None else two_phase_policy_factory(self.config)
        )
        self.members: Dict[NodeId, RrmpMember] = {}
        self.sender: Optional[RrmpSender] = None
        self.traffic = None
        self.message_count = 0
        self.offered_count = 0
        self.cc_driver: Optional[CongestionDriver] = None
        self.cc_reporters: List = []
        self.churn: Optional[ChurnSchedule] = None
        self.stability_agents: List = []
        self.data: Optional[DataMessage] = None
        self.holders: List[NodeId] = []
        self.bufferers: List[NodeId] = []
        self.requester: Optional[NodeId] = None
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def sharded(self) -> bool:
        """Whether this session hosts only a subset of the group."""
        return self._local_nodes is not None

    async def start(self) -> Address:
        """Open the socket, build local members, install the workload.

        Returns the bound address (useful with an ephemeral port).
        """
        if self._started:
            raise RuntimeError("session already started")
        self._started = True
        spec = self.spec
        address = await self.network.open(*self._bind)
        for node in self.hierarchy.nodes:
            if self._local_nodes is not None and node not in self._local_nodes:
                continue
            self.members[node] = RrmpMember(
                node_id=node,
                sim=self.sim,
                network=self.network,
                hierarchy=self.hierarchy,
                config=self.config,
                streams=self.streams,
                trace=self.trace,
                policy=self._policy_factory(node),
            )
        sender_node = default_sender_node(self.hierarchy)
        if sender_node in self.members:
            self.sender = RrmpSender(
                self.members[sender_node], outcome=outcome_for(spec.loss)
            )
            if spec.loss.kind == "region_correlated":
                self.sender.outcome = RegionCorrelatedOutcome(
                    self.hierarchy,
                    region_loss=spec.loss.region_loss,
                    receiver_loss=spec.loss.receiver_loss,
                    sender=self.sender.node_id,
                )

        if spec.policy.kind == "stability":
            self.stability_agents = attach_stability(list(self.members.values()))

        self._install_workload()
        if not self.hold:
            self.sim.release()  # setup done: virtual time starts now
        return address

    def release_clock(self) -> None:
        """Start virtual time on a session constructed with ``hold=True``.

        A shard whose clock starts at its own ``start()`` is skewed
        against its peers by however long the operator took to launch
        the next process — a horizon-bounded shard can finish before a
        late-starting sender shard transmits at all.  Holding past
        ``start()`` lets all shards bind first and release together.
        """
        self.sim.release()

    def _install_workload(self) -> None:
        spec = self.spec
        traffic = spec.traffic
        if traffic.kind in ("detect_all", "search_probe"):
            if self.sharded:
                raise ValueError(
                    f"{traffic.kind} injects state into every member and "
                    "cannot run in a sharded session; deploy it loopback"
                )
            if traffic.kind == "detect_all":
                self.data, self.holders = inject_detect_all(self, traffic)
            else:
                self.data, self.bufferers, self.requester = inject_search_probe(
                    self, traffic
                )
            self.message_count = 1
        else:
            generator = traffic_generator_for(traffic, spec, self.streams)
            if generator is not None:
                self.traffic = generator
                if self.sender is not None:
                    if self.config.congestion.enabled:
                        self._install_congestion(generator)
                    else:
                        self.message_count = generator.schedule(self)
                else:
                    # Sender lives in another shard; still consume the
                    # arrival draw so Poisson streams stay aligned with
                    # the sender's schedule.
                    self.message_count = generator.arrival_count()
        if (
            self.config.congestion.enabled
            and self.sender is None
            and self.members
        ):
            # Receiver shard of a congestion-controlled session: the
            # driver lives with the sender, but feedback must still
            # flow from here.
            self.cc_reporters = install_feedback_reporters(
                self.members.values(),
                default_sender_node(self.hierarchy),
                self.config.congestion.feedback_interval,
            )
        if (
            self.cc_driver is None
            and self.config.fec_mode != FEC_OFF
            and spec.fec.flush_after is not None
            and self.traffic is not None
            and self.message_count > 0
            and self.sender is not None
        ):
            self.sim.at(
                self.traffic.end_time() + spec.fec.flush_after,
                self.sender.flush_parity,
            )
        if spec.churn.kind == "random":
            if self.sharded:
                raise ValueError(
                    "random churn draws victims from the whole group and "
                    "cannot run in a sharded session; deploy it loopback"
                )
            duration = spec.churn.duration
            if duration <= 0:
                duration = spec.measurement.horizon or spec.measurement.duration
                if duration is None:
                    raise ValueError("random churn needs a duration or a horizon")
            protect = (
                [default_sender_node(self.hierarchy)]
                if spec.churn.protect_sender else []
            )
            self.churn = random_churn(
                self,
                self.streams.stream("scenario", "churn"),
                duration=duration,
                leave_rate=spec.churn.leave_rate,
                crash_rate=spec.churn.crash_rate,
                join_rate=spec.churn.join_rate,
                protect=protect,
            )

    def _install_congestion(self, generator) -> None:
        """Arm the closed send loop: driver at the sender, reporters
        at every local receiver.  The same controller code paces the
        live clock — ``LiveClock`` satisfies the driver's ``now``/
        ``at`` surface."""
        spec = self.spec

        def _on_stream_complete(now: float) -> None:
            if self.config.fec_mode != FEC_OFF and spec.fec.flush_after is not None:
                self.sim.at(now + spec.fec.flush_after, self.sender.flush_parity)

        controller = controller_for(self.config.congestion)
        self.cc_driver = CongestionDriver(
            self.sim,
            self.sender,
            generator,
            controller,
            trace=self.trace,
            on_complete=_on_stream_complete,
        )
        self.cc_driver.start()
        self.cc_reporters = install_feedback_reporters(
            self.members.values(),
            self.sender.node_id,
            self.config.congestion.feedback_interval,
        )
        self.offered_count = generator.arrival_count()
        self.message_count = self.offered_count

    def add_member(self, region_id: int) -> RrmpMember:
        """A new receiver joins *region_id* mid-session (churn joins)."""
        node = self.hierarchy.add_member(region_id)
        member = RrmpMember(
            node_id=node,
            sim=self.sim,
            network=self.network,
            hierarchy=self.hierarchy,
            config=self.config,
            streams=self.streams,
            trace=self.trace,
            policy=self._policy_factory(node),
        )
        self.members[node] = member
        self.trace.emit(self.sim.now, "member_joined", node=node, region=region_id)
        return member

    async def run(self) -> float:
        """Execute the spec's measurement plan; returns the final virtual time.

        Mirrors :meth:`repro.scenario.materialize.BuiltScenario.run`:
        sleep to the horizon/duration if bounded, then — for draining
        (or unbounded) specs — stop the session heartbeat and wait for
        the group to go quiescent.
        """
        measurement = self.spec.measurement
        bounded = False
        if self.sharded and measurement.horizon is None \
                and measurement.duration is None:
            # One shard cannot observe group-wide quiescence: an idle
            # shard would "drain" instantly and exit before the sender
            # shard transmits anything.
            raise ValueError(
                "sharded sessions need a horizon or duration; "
                "group-wide quiescence is not observable from one shard"
            )
        if measurement.horizon is not None:
            await self.sim.sleep_until(measurement.horizon)
            bounded = True
        elif measurement.duration is not None:
            await self.sim.sleep(measurement.duration)
            bounded = True
        if measurement.drain or not bounded:
            # Periodic CC machinery (the send loop and the feedback
            # reporters) would keep arming timers forever — stop it
            # before waiting for quiescence.
            if self.cc_driver is not None:
                self.cc_driver.stop()
            for reporter in self.cc_reporters:
                reporter.stop()
            if self.sender is not None:
                self.sender.stop()
            for agent in self.stability_agents:
                agent.stop()
            await self.wait_quiescent()
        for agent in self.stability_agents:
            agent.stop()
        if self.cc_driver is not None:
            self.cc_driver.stop()
            for reporter in self.cc_reporters:
                reporter.stop()
            self.message_count = self.cc_driver.sent
        return self.sim.now

    async def wait_quiescent(self, timeout_s: float = 30.0) -> None:
        """Wait until no timers are pending and no traffic is moving.

        Quiescence must hold for several consecutive polls: a single
        ``pending_events == 0`` reading can race a datagram in the
        socket buffer that is about to arm new timers.  Raises
        :class:`TimeoutError` after *timeout_s* real seconds — a group
        that will not settle is a bug worth failing loudly on.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout_s
        settled = 0
        previous = None
        while True:
            stats = self.network.stats
            state = (self.sim.pending_events, stats.sent, stats.delivered,
                     stats.dropped)
            if state[0] == 0 and state == previous:
                settled += 1
                if settled >= _QUIESCENCE_SETTLE:
                    return
            else:
                settled = 0
            previous = state
            if loop.time() > deadline:
                raise TimeoutError(
                    f"group did not quiesce within {timeout_s}s: "
                    f"{self.sim.pending_events} timers pending, "
                    f"stats={stats.sent}/{stats.delivered}/{stats.dropped}"
                )
            await asyncio.sleep(_QUIESCENCE_POLL_S)

    async def close(self) -> None:
        """Tear down: stop the sender, cancel timers, close the socket."""
        if self._closed:
            return
        self._closed = True
        if self.cc_driver is not None:
            self.cc_driver.stop()
        for reporter in self.cc_reporters:
            reporter.stop()
        if self.sender is not None:
            self.sender.stop()
        self.sim.cancel_all()
        self.network.close()
        await asyncio.sleep(0)  # let the transport finish closing

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self, previous: Optional[MetricsSnapshot] = None) -> MetricsSnapshot:
        """Current metrics sample (see :mod:`repro.metrics.snapshot`)."""
        return take_snapshot(self, previous)

    def summary(self) -> dict:
        """Headline metrics, shaped like ``BuiltScenario.summary()``."""
        latencies = self.recovery_latencies()
        alive = self.alive_members()
        from repro.metrics.stats import mean
        result = {
            "scenario": self.spec.name,
            "seed": self.spec.seed,
            "digest": self.spec.digest(),
            "mode": "live",
            "speedup": self.sim.speedup,
            "members": len(self.members),
            "alive_members": len(alive),
            "messages": self.message_count,
            "delivered_fraction": self.delivered_fraction(self.message_count),
            "recoveries": len(latencies),
            "mean_recovery_latency_ms": mean(latencies) if latencies else 0.0,
            "reliability_violations": self.violation_count(),
            "control_messages": self.control_message_count(),
            "data_messages": self.data_message_count(),
            "send_dropped": self.network.stats.send_dropped,
            "recv_rejected": self.network.recv_rejected,
            "events_fired": self.sim.events_fired,
            "time_ms": self.sim.now,
        }
        if self.makespan.delivery_count:
            result.update(self.makespan.summary())
        if self.cc_driver is not None:
            result["offered_messages"] = self.offered_count
            result["cc_controller"] = self.cc_driver.controller.name
            result["cc_final_interval_ms"] = self.cc_driver.controller.interval()
        return result


async def run_spec_live(
    spec: ScenarioSpec,
    speedup: float = 1.0,
    oracle=None,
    local_nodes: Optional[Set[NodeId]] = None,
    directory: Optional[Dict[NodeId, Address]] = None,
    bind: Address = ("127.0.0.1", 0),
) -> LiveSession:
    """Run one spec end to end over loopback UDP; returns the session.

    *oracle* — an unattached
    :class:`~repro.validate.oracle.InvariantOracle` — is attached
    before any member exists and finalized **before** teardown (closing
    the session cancels every timer, which would make a horizon-bounded
    run look quiescent and trip the liveness sweeps).
    """
    session = LiveSession(spec, speedup=speedup, local_nodes=local_nodes,
                          directory=directory, bind=bind)
    if oracle is not None:
        oracle.attach(session)
    await session.start()
    try:
        await session.run()
        if oracle is not None:
            oracle.finish()
    finally:
        await session.close()
    return session
