"""The runtime interface: what protocol code may assume about its host.

:class:`~repro.protocol.member.RrmpMember` and friends never talk to an
event loop or a socket directly — they see a *clock* (time and one-shot
scheduling, consumed via :class:`~repro.sim.Timer` and
:class:`~repro.sim.PeriodicTask`) and a *transport* (unicast, multicast,
RTT estimates, membership registration).  These structural protocols
pin that surface down so it can be implemented twice:

* the discrete-event world — :class:`repro.sim.Simulator` +
  :class:`repro.net.transport.Network`;
* the live world — :class:`repro.live.clock.LiveClock` +
  :class:`repro.live.transport.LiveTransport` over asyncio UDP.

The protocols are ``runtime_checkable`` so conformance is testable
(``isinstance(Simulator(), Clock)``), and deliberately *structural*:
the simulator predates this module and must not import it.

Semantics both implementations honour
------------------------------------
* Time is a ``float`` in milliseconds.
* ``after``/``at`` return a cancellable handle; a cancelled handle
  never fires and stops counting as pending.
* ``reserve_seq``/``at_reserved`` support the in-place re-arm of
  :class:`repro.sim.Timer`: a reservation burns one scheduling slot and
  ``at_reserved`` schedules under it.  The simulator uses the sequence
  for same-time tie-breaking; real time has no simultaneous events, so
  the live clock only preserves the call contract.
* ``pending_events == 0`` means quiescence — the invariant oracle's
  end-of-run liveness sweeps key on it.

One divergence is inherent: ``Simulator.at`` raises on times in the
past, while a wall clock cannot help having moved on since the caller
computed its deadline — :class:`~repro.live.clock.LiveClock` clamps
past times to "now" instead.  Protocol code only ever schedules ahead
of ``now``, so the clamp is a tolerance, not a behaviour change.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Protocol, runtime_checkable

from repro.net.packet import Packet
from repro.net.topology import NodeId


@runtime_checkable
class Handle(Protocol):
    """A scheduled callback that can be cancelled before it fires."""

    time: float
    seq: int

    @property
    def pending(self) -> bool:
        """Whether the callback is still waiting to fire."""
        ...

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        ...


@runtime_checkable
class Clock(Protocol):
    """Time plus one-shot scheduling, in milliseconds."""

    @property
    def now(self) -> float:
        """Current time in milliseconds."""
        ...

    @property
    def pending_events(self) -> int:
        """Number of live (not fired, not cancelled) scheduled callbacks."""
        ...

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far."""
        ...

    def after(self, delay: float, callback: Callable[..., None], *args: Any) -> Handle:
        """Schedule *callback(*args)* *delay* ms from now."""
        ...

    def at(self, time: float, callback: Callable[..., None], *args: Any) -> Handle:
        """Schedule *callback(*args)* at absolute *time*."""
        ...

    def reserve_seq(self) -> int:
        """Consume one scheduling sequence number (see module docstring)."""
        ...

    def at_reserved(self, time: float, seq: int, callback: Callable[..., None],
                    *args: Any) -> Handle:
        """Schedule under a sequence number from :meth:`reserve_seq`."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Point-to-point and fan-out delivery between registered endpoints."""

    def register(self, node_id: NodeId, endpoint: Any) -> None:
        """Attach an endpoint (anything with ``on_packet``)."""
        ...

    def unregister(self, node_id: NodeId) -> None:
        """Detach a node; in-flight traffic to it is dropped."""
        ...

    def is_registered(self, node_id: NodeId) -> bool:
        """Whether *node_id* currently has an attached endpoint."""
        ...

    def unicast(self, src: NodeId, dst: NodeId, payload: Any) -> Optional[Packet]:
        """Send *payload* from *src* to *dst*."""
        ...

    def multicast(self, src: NodeId, dsts: Iterable[NodeId], payload: Any,
                  group: str = "group", include_sender: bool = False) -> int:
        """Fan *payload* out to every node in *dsts*."""
        ...

    def rtt(self, src: NodeId, dst: NodeId) -> float:
        """Round-trip estimate protocol timers use."""
        ...
