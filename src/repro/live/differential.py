"""Sim/real differential harness.

Materialize one :class:`~repro.scenario.spec.ScenarioSpec` twice — in
the discrete-event simulator and over loopback UDP — run the invariant
oracle over both traces, and compare **normalized delivery digests**.
A mismatch means one of the two worlds is wrong: the simulator's
network model, the live transport, or the protocol's assumptions about
either.  That turns the live backend into a correctness oracle for the
simulator and vice versa.

Normalization
-------------
Wall-clock traces are not comparable: live timestamps jitter, loss
models sample in a different interleaving, and recoveries finish at
different instants.  What *is* comparable is the logical outcome of a
reliable multicast — **who delivered what**:

* ``delivered`` — the sorted set of ``(node, seq)`` pairs from
  ``member_received`` records;
* ``violations`` — the sorted set of ``(node, seq)`` pairs from
  ``reliability_violation`` records (recoveries that gave up).

The digest is the SHA-256 of the canonical JSON of those two sets.
Time, ordering, retry counts and traffic volume deliberately do not
participate: the protocol guarantees *delivery*, not a schedule.
Scenarios whose outcome is itself timing-dependent (churn races,
give-ups under sustained loss near ``max_recovery_time``) are honest
differential failures when the two worlds disagree — that sensitivity
is what the harness is for.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.scenario.spec import ScenarioSpec
from repro.sim.tracing import StreamingTraceDigest, TraceRecord
from repro.validate.oracle import InvariantOracle


def delivery_sets(
    records: Iterable[TraceRecord],
) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
    """The normalized ``(delivered, violations)`` sets of a trace."""
    delivered = set()
    violations = set()
    for record in records:
        if record.kind == "member_received":
            delivered.add((record["node"], record["seq"]))
        elif record.kind == "reliability_violation":
            violations.add((record["node"], record["seq"]))
    return sorted(delivered), sorted(violations)


def delivery_digest(records: Iterable[TraceRecord]) -> str:
    """SHA-256 over the canonical JSON of the normalized delivery sets."""
    delivered, violations = delivery_sets(records)
    payload = json.dumps(
        {"delivered": delivered, "violations": violations},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SideResult:
    """One world's run: digest, delivery sets, oracle verdict, summary.

    ``trace_digest`` is the raw (non-normalized) trace digest, computed
    incrementally by :class:`~repro.sim.tracing.StreamingTraceDigest`.
    It is *not* expected to match between worlds (timestamps differ);
    it identifies each side's exact trace for reproduction, without the
    harness ever needing a second pass over the record list.
    """

    mode: str                          #: ``"sim"`` or ``"live"``
    digest: str
    delivered: List[Tuple[int, int]]
    violations: List[Tuple[int, int]]
    oracle_violations: int
    records_checked: int
    summary: Dict[str, Any]
    trace_digest: str = ""
    trace_records: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of one spec run in both worlds."""

    spec_name: str
    seed: int
    spec_digest: str
    sim: SideResult
    live: SideResult

    @property
    def digests_match(self) -> bool:
        """Whether both worlds produced the same delivery digest."""
        return self.sim.digest == self.live.digest

    @property
    def ok(self) -> bool:
        """Digests match and neither world violated an invariant."""
        return (self.digests_match and self.sim.oracle_violations == 0
                and self.live.oracle_violations == 0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.spec_name,
            "seed": self.seed,
            "spec_digest": self.spec_digest,
            "digests_match": self.digests_match,
            "ok": self.ok,
            "sim": self.sim.to_dict(),
            "live": self.live.to_dict(),
        }


def _with_trace(spec: ScenarioSpec, oracle: bool = False) -> ScenarioSpec:
    """The spec with record retention (and optionally the oracle) forced on.

    Digests need retained records; the sim side also needs
    ``measurement.oracle`` so the oracle attaches *inside* the build,
    before probe workloads inject their records.
    """
    measurement = spec.measurement
    if measurement.keep_trace and (measurement.oracle or not oracle):
        return spec
    return spec.with_(
        measurement=dataclasses.replace(
            measurement,
            keep_trace=True,
            oracle=measurement.oracle or oracle,
        )
    )


def run_sim_side(spec: ScenarioSpec) -> SideResult:
    """Run *spec* in the discrete-event simulator under the oracle."""
    spec = _with_trace(spec, oracle=True)
    built = spec.build()
    oracle = built.oracle
    assert oracle is not None  # forced on by _with_trace
    # Incremental trace digest: replay build-time workload injections
    # (emitted before we could subscribe), then stream the run itself.
    stream = StreamingTraceDigest()
    for record in built.simulation.trace.records:
        stream.update(record)
    stream.attach(built.simulation.trace)
    built.run()
    records = built.simulation.trace.records
    delivered, violations = delivery_sets(records)
    return SideResult(
        mode="sim",
        digest=delivery_digest(records),
        delivered=delivered,
        violations=violations,
        oracle_violations=oracle.violation_count,
        records_checked=oracle.records_checked,
        summary=built.summary(),
        trace_digest=stream.hexdigest(),
        trace_records=stream.count,
    )


async def run_live_side(spec: ScenarioSpec, speedup: float = 1.0) -> SideResult:
    """Run *spec* over loopback UDP under the oracle."""
    from repro.live.session import run_spec_live

    spec = _with_trace(spec)
    oracle = InvariantOracle()
    session = await run_spec_live(spec, speedup=speedup, oracle=oracle)
    records = session.trace.records
    stream = StreamingTraceDigest()
    for record in records:
        stream.update(record)
    delivered, violations = delivery_sets(records)
    return SideResult(
        mode="live",
        digest=delivery_digest(records),
        delivered=delivered,
        violations=violations,
        oracle_violations=oracle.violation_count,
        records_checked=oracle.records_checked,
        summary=session.summary(),
        trace_digest=stream.hexdigest(),
        trace_records=stream.count,
    )


def run_differential(
    spec: ScenarioSpec,
    speedup: float = 1.0,
    seed: Optional[int] = None,
) -> DifferentialResult:
    """Run *spec* in both worlds and compare normalized digests."""
    if seed is not None:
        spec = spec.with_(seed=seed)
    sim_side = run_sim_side(spec)
    live_side = asyncio.run(run_live_side(spec, speedup=speedup))
    return DifferentialResult(
        spec_name=spec.name,
        seed=spec.seed,
        spec_digest=spec.digest(),
        sim=sim_side,
        live=live_side,
    )
