"""Execution backends: where trials actually run.

Both backends take an ordered list of :class:`TrialSpec`-shaped tasks
and return :class:`TrialOutcome` objects **in task order** — ordering
is the backends' half of the determinism contract (the other half is
trials deriving all randomness from their own seed).

:class:`ProcessPoolBackend` ships the top-level trial function by
pickle reference, so worker processes import the experiment module
fresh; nothing of the parent's engine state (simulators, event queues,
RNG streams) travels along.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.runner.spec import TrialFn, TrialSpec
from repro.sim.engine import total_events_fired

#: The picklable wire form of one task: (trial function, params, seed).
Task = Tuple[TrialFn, Dict[str, Any], int]


@dataclass
class TrialOutcome:
    """A trial's result plus its execution accounting."""

    value: Any
    events_fired: int
    elapsed_s: float


def execute_trial(trial: TrialFn, params: Dict[str, Any], seed: int) -> TrialOutcome:
    """Run one trial, attributing engine events and wall time to it."""
    events_before = total_events_fired()
    started = time.perf_counter()
    value = trial(dict(params), seed)
    return TrialOutcome(
        value=value,
        events_fired=total_events_fired() - events_before,
        elapsed_s=time.perf_counter() - started,
    )


def _execute_task(task: Task) -> TrialOutcome:
    """Top-level pool entry point (must be picklable by reference)."""
    trial, params, seed = task
    return execute_trial(trial, params, seed)


def _tasks(specs: Sequence[TrialSpec]) -> List[Task]:
    return [(spec.trial, spec.params, spec.seed) for spec in specs]


class SerialBackend:
    """Run trials one after another in this process (the default)."""

    jobs = 1

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialOutcome]:
        """Execute every spec in order."""
        return [_execute_task(task) for task in _tasks(specs)]


class ProcessPoolBackend:
    """Fan trials across *jobs* worker processes.

    Results come back in submission order (``Executor.map``), so the
    reduction downstream is independent of scheduling; a trial raising
    propagates the exception to the caller, as in serial execution.

    The worker pool is created lazily on first use and **reused across
    ``run()`` calls** — an ``all --jobs N`` invocation makes one sweep
    submission per experiment, and paying a pool spin-up (interpreter
    start + imports under the spawn start method) per experiment would
    dwarf quick-mode trial time.  Call :meth:`close` to release the
    workers early; otherwise they are reclaimed when the backend is
    garbage-collected or the process exits.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self._executor: "ProcessPoolExecutor | None" = None

    def _executor_instance(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def run(self, specs: Sequence[TrialSpec]) -> List[TrialOutcome]:
        """Execute every spec, preserving spec order in the results."""
        tasks = _tasks(specs)
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            return [_execute_task(task) for task in tasks]
        chunksize = max(1, len(tasks) // (self.jobs * 4))
        executor = self._executor_instance()
        return list(executor.map(_execute_task, tasks, chunksize=chunksize))
