"""Opt-in cProfile wrapping for CLI runs (the ``--profile`` flag).

Kept in :mod:`repro.runner` because both CLI front-ends
(``experiments run`` and ``scenarios run``) share it and the runner
package already sits below both; it imports nothing from either, so
there is no cycle.
"""

from __future__ import annotations

import cProfile
import pstats
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator, Optional, Union

#: How many cumulative-time entries ``--profile`` prints to stderr.
PROFILE_TOP_N = 25


@contextmanager
def maybe_profile(
    enabled: bool,
    output_path: Union[str, Path] = "profile.pstats",
    top: int = PROFILE_TOP_N,
) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block when *enabled*.

    On exit the raw stats go to *output_path* (loadable with
    ``python -m pstats`` or snakeviz) and the top *top* functions by
    cumulative time go to stderr — stdout stays clean for ``--json``
    pipelines.  With ``enabled=False`` the block runs untouched.
    """
    if not enabled:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        path = Path(output_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(path))
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print(f"-- profile: wrote {path}; top {top} by cumulative time --",
              file=sys.stderr)
        stats.print_stats(top)


__all__ = ["PROFILE_TOP_N", "maybe_profile"]
