"""Declarative sweep runner (parallel trial execution + result cache).

Experiments describe their work as :class:`TrialSpec` /
:class:`SweepSpec` values — picklable ``(experiment id, params, seed)``
units — and submit them to the ambient :class:`Runner`, which executes
them on a pluggable backend (:class:`SerialBackend` or
:class:`ProcessPoolBackend`) through an on-disk :class:`ResultCache`.
Reduction happens in spec order, so ``--jobs N`` is byte-identical to
serial execution at equal seeds.
"""

from repro.runner.backends import (
    ProcessPoolBackend,
    SerialBackend,
    TrialOutcome,
    execute_trial,
)
from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runner.runner import Runner, RunnerStats, current_runner, using_runner
from repro.runner.spec import (
    CACHE_SCHEMA_VERSION,
    SweepSpec,
    TrialSpec,
    canonical_params,
    trial_name,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "ProcessPoolBackend",
    "ResultCache",
    "Runner",
    "RunnerStats",
    "SerialBackend",
    "SweepSpec",
    "TrialOutcome",
    "TrialSpec",
    "canonical_params",
    "current_runner",
    "default_cache_dir",
    "execute_trial",
    "trial_name",
    "using_runner",
]
