"""On-disk result cache for trial executions.

One JSON file per trial, under ``<root>/<experiment_id>/<key>.json``.
Entries carry the full key fields alongside the result so a cache
directory is self-describing (and greppable).  Writes are atomic
(tempfile + rename) so concurrent worker processes and concurrent CLI
invocations never observe half-written entries; any unreadable entry is
treated as a miss.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from pathlib import Path
from typing import Any, Optional

from repro.runner.spec import CACHE_SCHEMA_VERSION, TrialSpec, trial_name

#: Environment override for the default cache location.
CACHE_DIR_ENV = "RRMP_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$RRMP_CACHE_DIR`` or ``~/.cache/rrmp-experiments``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override).expanduser()
    return Path.home() / ".cache" / "rrmp-experiments"


def _safe_segment(text: str) -> str:
    """A filesystem-safe directory name for an experiment id."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", text) or "_"


class ResultCache:
    """Maps :class:`TrialSpec` keys to stored trial results."""

    def __init__(self, root: "Path | str | None" = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, spec: TrialSpec) -> Path:
        """Where *spec*'s entry lives (whether or not it exists)."""
        return self.root / _safe_segment(spec.experiment_id) / f"{spec.cache_key()}.json"

    def get(self, spec: TrialSpec) -> Optional[dict]:
        """The stored entry for *spec*, or ``None`` on miss/corruption."""
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(entry, dict) or entry.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        if "result" not in entry:
            return None
        return entry

    def put(self, spec: TrialSpec, result: Any, events_fired: int = 0,
            elapsed_s: float = 0.0) -> Path:
        """Store *result* for *spec* atomically; returns the entry path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA_VERSION,
            "experiment_id": spec.experiment_id,
            "trial": trial_name(spec.trial),
            "params": spec.params,
            "seed": spec.seed,
            "result": result,
            "events_fired": events_fired,
            "elapsed_s": elapsed_s,
        }
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=str(path.parent),
            prefix=".tmp-", suffix=".json", delete=False,
        )
        try:
            with handle:
                json.dump(entry, handle)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return path

    def entry_count(self) -> int:
        """Number of entries currently on disk (diagnostics)."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))
