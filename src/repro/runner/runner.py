"""The sweep runner: cache-aware, backend-pluggable trial execution.

:class:`Runner` takes declarative :class:`~repro.runner.spec.TrialSpec`
lists, consults the result cache, executes the misses on its backend
(serially or in a process pool), stores new results, and returns values
**in spec order** — the property that makes parallel runs byte-identical
to serial ones.

Experiments do not construct runners; they route through the *ambient*
runner (:func:`current_runner`), which defaults to serial execution
with no cache — exactly the historical behaviour — and which the CLI
swaps for a parallel, cached runner via :func:`using_runner`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.runner.backends import ProcessPoolBackend, SerialBackend, TrialOutcome
from repro.runner.cache import ResultCache
from repro.runner.spec import SweepSpec, TrialSpec


@dataclass
class RunnerStats:
    """Accounting across every sweep a runner has executed."""

    trials: int = 0
    executed: int = 0
    cached: int = 0
    deduped: int = 0
    events_fired: int = 0
    elapsed_s: float = 0.0

    def add_outcome(self, outcome: TrialOutcome) -> None:
        self.events_fired += outcome.events_fired
        self.elapsed_s += outcome.elapsed_s

    def summary(self) -> str:
        """One-line summary (the CLI prints this to stderr)."""
        return (
            f"trials={self.trials} executed={self.executed} "
            f"cached={self.cached} deduped={self.deduped} "
            f"events={self.events_fired} trial_time={self.elapsed_s:.2f}s"
        )


class Runner:
    """Execute trial specs against a backend, through a result cache."""

    def __init__(
        self,
        backend: "SerialBackend | ProcessPoolBackend | None" = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.backend = backend if backend is not None else SerialBackend()
        self.cache = cache
        self.stats = RunnerStats()

    def run(self, specs: Sequence[TrialSpec]) -> List[Any]:
        """Run every spec; results come back in spec order.

        Identical specs (same cache key) within one call are coalesced
        and executed once — trials are deterministic functions of
        ``(params, seed)``, so the shared result is exact, not an
        approximation.
        """
        specs = list(specs)
        self.stats.trials += len(specs)
        results: List[Any] = [None] * len(specs)
        pending_by_key: Dict[str, List[int]] = {}
        for index, spec in enumerate(specs):
            entry = self.cache.get(spec) if self.cache is not None else None
            if entry is not None:
                results[index] = entry["result"]
                self.stats.cached += 1
                continue
            pending_by_key.setdefault(spec.cache_key(), []).append(index)

        unique_positions = [positions[0] for positions in pending_by_key.values()]
        outcomes = self.backend.run([specs[index] for index in unique_positions])
        for positions, outcome in zip(pending_by_key.values(), outcomes):
            for position in positions:
                results[position] = outcome.value
            self.stats.executed += 1
            self.stats.deduped += len(positions) - 1
            self.stats.add_outcome(outcome)
            if self.cache is not None:
                self.cache.put(
                    specs[positions[0]], outcome.value,
                    events_fired=outcome.events_fired,
                    elapsed_s=outcome.elapsed_s,
                )
        return results

    def run_sweep(self, sweep: SweepSpec) -> List[List[Any]]:
        """Run one sweep; returns one result list per grid point."""
        return sweep.group(self.run(sweep.trials()))

    def run_sweeps(self, sweeps: Sequence[SweepSpec]) -> List[List[List[Any]]]:
        """Run several sweeps as one batch (one pool fan-out), returning
        each sweep's grouped results in sweep order."""
        all_specs: List[TrialSpec] = []
        offsets: List[int] = []
        for sweep in sweeps:
            offsets.append(len(all_specs))
            all_specs.extend(sweep.trials())
        flat = self.run(all_specs)
        grouped: List[List[List[Any]]] = []
        for sweep, offset in zip(sweeps, offsets):
            count = len(sweep.grid) * len(sweep.derived_seeds())
            grouped.append(sweep.group(flat[offset:offset + count]))
        return grouped


#: The ambient runner experiments route through when nobody installed
#: one: serial, uncached — the historical per-experiment loop behaviour.
_DEFAULT_RUNNER = Runner()
_current_runner: Runner = _DEFAULT_RUNNER


def current_runner() -> Runner:
    """The runner experiment modules should submit their sweeps to."""
    return _current_runner


@contextmanager
def using_runner(runner: Runner) -> Iterator[Runner]:
    """Install *runner* as the ambient runner for the ``with`` body."""
    global _current_runner
    previous = _current_runner
    _current_runner = runner
    try:
        yield runner
    finally:
        _current_runner = previous
