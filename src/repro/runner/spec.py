"""Declarative descriptions of sweep work.

A :class:`TrialSpec` is the schedulable unit of an experiment: one
top-level trial function applied to one picklable parameter dict and
one seed.  A :class:`SweepSpec` fans a parameter grid × seed list into
trials.  Both are pure descriptions — executing them (serially, in a
process pool, against a cache) is the runner's job.

Determinism contract: a sweep enumerates its trials in grid-major,
seed-minor order, and the runner reduces results in exactly that order,
so ``--jobs N`` produces byte-identical tables to serial execution.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Sequence

import repro
from repro.sim.randomness import derive_seed

#: Bump when the meaning of cached trial results changes (new fields,
#: changed units, renamed metrics) so stale on-disk entries are ignored.
CACHE_SCHEMA_VERSION = 1

#: A trial function: ``(params, seed) -> JSON-serializable result``.
#: Must be a top-level function so it pickles by reference into worker
#: processes; must derive all randomness from ``seed``.
TrialFn = Callable[[Dict[str, Any], int], Any]


def canonical_params(params: Mapping[str, Any]) -> str:
    """Canonical JSON encoding of a parameter dict.

    Keys are sorted and tuples collapse to JSON lists, so two dicts that
    describe the same trial produce the same cache key regardless of
    construction order or sequence type.
    """
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def trial_name(trial: TrialFn) -> str:
    """Stable import path of a trial function (part of the cache key)."""
    return f"{trial.__module__}:{trial.__qualname__}"


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """A digest of the whole ``repro`` source tree, part of every cache
    key: any code edit invalidates existing entries, so a cached table
    can never silently quote results from before a fix.  Computed once
    per process (~100 files)."""
    root = Path(repro.__file__).resolve().parent
    hasher = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        hasher.update(str(path.relative_to(root)).encode("utf-8"))
        hasher.update(b"\x00")
        hasher.update(path.read_bytes())
    return hasher.hexdigest()[:16]


@dataclass
class TrialSpec:
    """One schedulable, cacheable unit of experiment work."""

    experiment_id: str
    trial: TrialFn
    params: Dict[str, Any]
    seed: int

    def cache_key(self) -> str:
        """SHA-256 identity of this trial for the on-disk result cache.

        Keyed by ``(experiment_id, trial function, canonical params,
        seed, cache-schema version, source-tree fingerprint)`` —
        everything that determines the result, given deterministic
        trial functions.
        """
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "code": code_fingerprint(),
                "experiment_id": self.experiment_id,
                "trial": trial_name(self.trial),
                "params": json.loads(canonical_params(self.params)),
                "seed": self.seed,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class SweepSpec:
    """A parameter grid × seed list, fanned into :class:`TrialSpec` units.

    ``grid`` is a sequence of parameter dicts (one per sweep point);
    every point runs once per seed.  ``seed_salt``, when set, derives a
    per-sweep seed list from the nominal seeds via the same SHA-based
    :func:`repro.sim.randomness.derive_seed` the protocol streams use —
    for sweeps that must not share seeds with other sweeps.  The default
    (no salt) uses the seeds as given, matching the historical
    ``seed_list`` behaviour of every experiment.
    """

    experiment_id: str
    trial: TrialFn
    grid: Sequence[Dict[str, Any]]
    seeds: Sequence[int]
    seed_salt: "str | None" = field(default=None)

    def derived_seeds(self) -> List[int]:
        """The concrete per-point seed list after derivation."""
        if self.seed_salt is None:
            return [int(seed) for seed in self.seeds]
        return [
            derive_seed(int(seed), (self.experiment_id, self.seed_salt))
            for seed in self.seeds
        ]

    def trials(self) -> List[TrialSpec]:
        """Fan out: grid-major, seed-minor, deterministic order."""
        seeds = self.derived_seeds()
        return [
            TrialSpec(self.experiment_id, self.trial, dict(params), seed)
            for params in self.grid
            for seed in seeds
        ]

    def group(self, results: Sequence[Any]) -> List[List[Any]]:
        """Chunk flat trial results back into one list per grid point."""
        per_point = len(self.derived_seeds())
        expected = per_point * len(self.grid)
        if len(results) != expected:
            raise ValueError(
                f"sweep {self.experiment_id!r} expects {expected} results "
                f"({len(self.grid)} points x {per_point} seeds), got {len(results)}"
            )
        return [
            list(results[index:index + per_point])
            for index in range(0, expected, per_point)
        ]
