"""Tiny trial functions used by the runner's own test suite.

They live in the package (not in test modules) so they pickle by
reference into worker processes under any multiprocessing start method
— exactly the constraint real experiment trials satisfy.
"""

from __future__ import annotations

import random
from typing import Any, Dict

from repro.sim.engine import Simulator, total_events_fired


def trial_square(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """The smallest deterministic trial: arithmetic on (params, seed)."""
    return {"value": int(params["x"]) ** 2 + seed, "seed": seed}


def trial_draw(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """A trial whose result is a pure function of its own seed."""
    rng = random.Random(seed)
    return {"draws": [rng.randrange(int(params["bound"])) for _ in range(5)]}


def trial_engine_exercise(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Exercise a fresh engine: schedule, cancel, run with ``max_events``.

    Returns enough state to prove the executing process handed this
    trial a pristine engine world: a zero clock, an accurate pending
    count, and event accounting that matches this trial alone —
    regardless of what earlier trials ran in the same worker.
    """
    n_events = int(params["events"])
    cancel_stride = int(params["cancel_stride"])
    max_events = params.get("max_events")
    sim = Simulator()
    clean_clock = sim.now == 0.0 and sim.pending_events == 0
    fired = []
    scheduled = [sim.after(float(i + 1), fired.append, i) for i in range(n_events)]
    # Cancel every ``cancel_stride``-th event *after* scheduling, the
    # lazy-cancellation path the EventQueue must tolerate mid-heap.
    cancelled = 0
    for index in range(0, n_events, cancel_stride):
        scheduled[index].cancel()
        cancelled += 1
    live_before = sim.pending_events
    global_before = total_events_fired()
    end = sim.run(max_events=None if max_events is None else int(max_events))
    rng = random.Random(seed)
    return {
        "clean_clock": clean_clock,
        "live_before": live_before,
        "fired": len(fired),
        "cancelled": cancelled,
        "instance_events": sim.events_fired,
        "global_delta": total_events_fired() - global_before,
        "end_time": end,
        "pending_after": sim.pending_events,
        "draw": rng.random(),
    }
