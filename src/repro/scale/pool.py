"""Struct-of-arrays member state for the mega-scale engine.

A :class:`FlatMemberPool` holds the *entire* group's per-member,
per-message protocol state in a handful of numpy arrays indexed
``[member, seq - 1]`` — no per-member Python objects, no per-member
timers.  At 100,000 members × 10 messages the whole pool is ~20 MB,
and every protocol transition the flat engine performs (multicast
delivery, loss detection, repair application, idle sweeps) is one
vectorized operation over a region's contiguous row slice.

The pool relies on the topology builders' node-numbering contract:
:func:`repro.net.topology.single_region` / ``chain`` / ``star`` /
``balanced_tree`` auto-assign sequential node ids region by region, so
every region is a contiguous ``[start, stop)`` row range.  The
constructor verifies this instead of assuming it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.net.topology import Hierarchy, NodeId, RegionId


class FlatMemberPool:
    """Array-backed state for every member of a hierarchy.

    Arrays (all shaped ``(members, messages)``):

    * ``received`` — bool; the member delivered this seq;
    * ``buffered`` — bool; the member currently buffers a copy
      (short- or long-term);
    * ``long_term`` — bool; the buffered copy survived the §3.2 coin
      flip (or is the sender's pinned copy);
    * ``given_up`` — bool; recovery exceeded ``max_recovery_time`` and
      reported a ``reliability_violation``;
    * ``receive_time`` — float ms (NaN until received);
    * ``idle_deadline`` — float ms; when the short-term idle timer (T)
      fires next for this copy (+inf when not armed).
    """

    def __init__(self, hierarchy: Hierarchy, message_count: int) -> None:
        if message_count < 1:
            raise ValueError(f"message_count must be >= 1, got {message_count}")
        nodes = hierarchy.nodes
        size = len(nodes)
        if nodes != list(range(size)):
            raise ValueError(
                "FlatMemberPool needs contiguous node ids 0..n-1 in region "
                "order (use the standard topology builders)"
            )
        self.size = size
        self.message_count = message_count
        self.region_ids: List[RegionId] = sorted(hierarchy.regions)
        self.region_rows: Dict[RegionId, Tuple[int, int]] = {}
        cursor = 0
        for region_id in self.region_ids:
            members = hierarchy.regions[region_id].members
            if members != list(range(cursor, cursor + len(members))):
                raise ValueError(
                    f"region {region_id} member ids are not the contiguous "
                    f"range starting at {cursor}; the flat engine cannot "
                    "slice it"
                )
            self.region_rows[region_id] = (cursor, cursor + len(members))
            cursor += len(members)

        shape = (size, message_count)
        self.received = np.zeros(shape, dtype=bool)
        self.buffered = np.zeros(shape, dtype=bool)
        self.long_term = np.zeros(shape, dtype=bool)
        self.given_up = np.zeros(shape, dtype=bool)
        self.receive_time = np.full(shape, np.nan, dtype=np.float64)
        self.idle_deadline = np.full(shape, np.inf, dtype=np.float64)

    # ------------------------------------------------------------------
    # Region access
    # ------------------------------------------------------------------
    def rows(self, region_id: RegionId) -> Tuple[int, int]:
        """The ``[start, stop)`` row range of *region_id*."""
        return self.region_rows[region_id]

    def region_size(self, region_id: RegionId) -> int:
        start, stop = self.region_rows[region_id]
        return stop - start

    def region_of_row(self, row: int) -> RegionId:
        """The region owning member *row* (O(regions); used off the hot
        path by the oracle adapter)."""
        for region_id, (start, stop) in self.region_rows.items():
            if start <= row < stop:
                return region_id
        raise KeyError(f"row {row} outside every region range")

    # ------------------------------------------------------------------
    # Aggregate queries (summary + oracle support)
    # ------------------------------------------------------------------
    def delivered_pairs(self, rows: Tuple[int, int] | None = None) -> int:
        """Number of delivered ``(member, seq)`` pairs (optionally one
        region's row range)."""
        view = self.received if rows is None else self.received[rows[0]:rows[1]]
        return int(view.sum())

    def delivered_fraction(self) -> float:
        """Fraction of all ``(member, seq)`` pairs delivered."""
        total = self.size * self.message_count
        return float(self.received.sum()) / total if total else 1.0

    def given_up_pairs(self, rows: Tuple[int, int] | None = None) -> int:
        """Number of ``(member, seq)`` pairs that gave recovery up."""
        view = self.given_up if rows is None else self.given_up[rows[0]:rows[1]]
        return int(view.sum())

    def occupancy(self) -> int:
        """Total buffered copies across the whole group."""
        return int(self.buffered.sum())

    def long_term_copies(self, seq: int) -> int:
        """Current long-term holders of *seq* across the whole group."""
        return int(self.long_term[:, seq - 1].sum())

    def highest_delivered(self) -> np.ndarray:
        """Per-member highest contiguously delivered seq (0 = none).

        The flat analogue of the gap tracker's delivery frontier: the
        length of each member's gap-free received prefix.
        """
        prefix = np.cumprod(self.received, axis=1, dtype=np.int64)
        return prefix.sum(axis=1)

    # ------------------------------------------------------------------
    # Per-member views (oracle end-of-run sweep)
    # ------------------------------------------------------------------
    def member_buffered_seqs(self, row: int) -> List[int]:
        """Seqs member *row* currently buffers, ascending."""
        return [int(col) + 1 for col in np.nonzero(self.buffered[row])[0]]

    def member_unresolved_gaps(self, row: int) -> List[int]:
        """Seqs member *row* never delivered, ascending (given-up seqs
        included — they carry ``reliability_violation`` records)."""
        return [int(col) + 1 for col in np.nonzero(~self.received[row])[0]]

    def member_is_buffering(self, row: int, seq: int) -> bool:
        return bool(self.buffered[row, seq - 1])

    def nbytes(self) -> int:
        """Total array payload in bytes (reported by benchmarks)."""
        arrays = (
            self.received, self.buffered, self.long_term,
            self.given_up, self.receive_time, self.idle_deadline,
        )
        return sum(array.nbytes for array in arrays)


__all__ = ["FlatMemberPool", "NodeId", "RegionId"]
