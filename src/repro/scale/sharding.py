"""Mirror sharding: digest-exact parallel runs of classic scenarios.

The flat engine owns the 100k tier, but the acceptance bar for
``--shards N`` on *classic* registry scenarios is brutal: the merged
trace digest must be **byte-identical to the serial run** — the same
:func:`repro.sim.tracing.trace_digest` the golden baselines pin, which
hashes records in serial *emission order*.  Partitioned execution of
the object engine cannot reproduce that order (same-time events
tie-break on a per-simulator insertion sequence), so classic sharding
mirrors instead: every shard replays the **full** deterministic
simulation via the sweep runner's :class:`ProcessPoolBackend` and
retains only the records its regions *own*, each tagged with its global
emission index.  The parent merges the slices by index — verifying
they tile ``0..N-1`` exactly — and folds the lines into one
:class:`~repro.sim.tracing.StreamingTraceDigest`.

Ownership is region-based (a record belongs to the shard owning its
node's region; node→region follows ``member_joined`` records, so churn
scenarios shard correctly) and is computed identically in every shard
from the same replayed trace, so the slices partition the stream by
construction.  Mirroring trades redundant compute for exactness; it is
the honest option until the flat engine's event model covers the whole
classic feature matrix.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.runner.backends import ProcessPoolBackend, SerialBackend, TrialOutcome
from repro.runner.spec import TrialSpec
from repro.scenario.spec import ScenarioSpec
from repro.sim.tracing import StreamingTraceDigest, record_line


def _mirror_shard_trial(params: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Top-level trial (picklable by reference): replay the scenario and
    keep the records owned by this shard's regions."""
    spec = ScenarioSpec.from_json(params["spec_json"])
    shard = int(params["shard"])
    shards = int(params["shards"])
    if not spec.measurement.keep_trace:
        # Records must be retained to slice them; forcing retention is
        # behavior-neutral (tracing never feeds back into the protocol).
        spec = spec.with_(
            measurement=dataclasses.replace(spec.measurement, keep_trace=True)
        )
    built = spec.build()
    hierarchy = built.simulation.hierarchy
    node_region = {
        node: hierarchy.region_id_of(node) for node in hierarchy.nodes
    }
    region_shard = {
        region_id: index % shards
        for index, region_id in enumerate(sorted(hierarchy.regions))
    }
    built.run()

    lines: List[Tuple[int, bytes]] = []
    total = 0
    for index, record in enumerate(built.simulation.trace.records):
        total += 1
        if record.kind == "member_joined":
            node_region[record["node"]] = record["region"]
        node = record.get("node")
        if node is not None and node in node_region:
            owner = region_shard.get(node_region[node], 0)
        else:
            region = record.get("region")
            owner = region_shard.get(region, 0) if region is not None else 0
        if owner == shard:
            lines.append((index, record_line(record)))
    return {
        "total": total,
        "lines": lines,
        "summary": built.summary() if shard == 0 else None,
    }


@dataclass(frozen=True)
class MirrorShardResult:
    """The merged outcome of a mirror-sharded classic run."""

    spec_name: str
    seed: int
    shards: int
    jobs: int
    trace_digest: str
    trace_records: int
    summary: Dict[str, Any]
    shard_records: Tuple[int, ...]

    def payload(self) -> Dict[str, Any]:
        """JSON-ready form (the ``scenarios run --shards`` output)."""
        return {
            **self.summary,
            "engine": "mirror-sharded",
            "shards": self.shards,
            "jobs": self.jobs,
            "trace_digest": self.trace_digest,
            "trace_records": self.trace_records,
            "shard_records": list(self.shard_records),
        }


def run_mirror_sharded(
    spec: ScenarioSpec,
    shards: int,
    jobs: Optional[int] = None,
    backend=None,
) -> MirrorShardResult:
    """Run *spec* across *shards* mirrored workers and merge the trace.

    ``jobs`` caps worker-process parallelism (default: one process per
    shard).  The merged digest equals ``trace_digest()`` of a serial
    run of the same spec — the shard-determinism tests pin this against
    the golden baselines.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    spec_json = spec.to_json()
    trials = [
        TrialSpec(
            experiment_id="mirror_shard",
            trial=_mirror_shard_trial,
            params={"spec_json": spec_json, "shard": shard, "shards": shards},
            seed=spec.seed,
        )
        for shard in range(shards)
    ]
    if backend is None:
        workers = jobs if jobs is not None else shards
        backend = SerialBackend() if workers <= 1 else ProcessPoolBackend(workers)
    outcomes: List[TrialOutcome] = backend.run(trials)

    totals = {outcome.value["total"] for outcome in outcomes}
    if len(totals) != 1:
        raise RuntimeError(
            f"mirrored shards disagree on the record count: {sorted(totals)} "
            "— the simulation is not deterministic"
        )
    total = totals.pop()
    merged: List[Tuple[int, bytes]] = []
    for outcome in outcomes:
        merged.extend(outcome.value["lines"])
    merged.sort(key=lambda item: item[0])
    if [index for index, _ in merged] != list(range(total)):
        raise RuntimeError(
            "shard record slices do not tile the emission order exactly "
            f"(got {len(merged)} records for a {total}-record trace)"
        )
    digest = StreamingTraceDigest()
    for _, line in merged:
        digest.update_line(line)
    summary = outcomes[0].value["summary"] or {}
    return MirrorShardResult(
        spec_name=spec.name,
        seed=spec.seed,
        shards=shards,
        jobs=getattr(backend, "jobs", 1),
        trace_digest=digest.hexdigest(),
        trace_records=digest.count,
        summary=summary,
        shard_records=tuple(
            len(outcome.value["lines"]) for outcome in outcomes
        ),
    )


__all__ = ["MirrorShardResult", "run_mirror_sharded"]
