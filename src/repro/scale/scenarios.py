"""The ``scale`` scenario tier: named mega-scale workloads.

A deliberately *separate* registry from
:mod:`repro.scenario.registry`: the classic registry's scenarios all
fit the object engine and carry golden trace digests that tests iterate
exhaustively — a 100,000-member entry there would turn every
``scenario_names()`` parametrization into an hours-long run.  Scale-
tier scenarios are listed in their own CLI section and always execute
on the flat engine (:func:`repro.scale.engine.run_flat`).

Every entry is the :func:`repro.scenario.library.scale_spec` shape
(star hierarchy, uniform lossy stream, two-phase policy) at a size the
flat engine exists for.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.scenario.library import scale_spec
from repro.scenario.spec import ScenarioSpec


def scale_10k_spec(seed: int = 0) -> ScenarioSpec:
    """10 regions x 1,000 members: the PR-gate shard-parity workload."""
    return scale_spec(
        regions=10, members_per_region=1_000, messages=10, seed=seed,
    ).with_(
        name="scale_10k",
        description="flat engine: 10 regions x 1,000 members, 10 messages "
        "at 5% loss",
    )


def scale_100k_spec(seed: int = 0) -> ScenarioSpec:
    """100 regions x 1,000 members: the BENCH_scale_100k workload.

    1,000-member regions keep the numpy fan-out wide enough that the
    per-event Python overhead amortizes (100 x 1000 beats 1000 x 100 by
    an order of magnitude at identical member count).
    """
    return scale_spec(
        regions=100, members_per_region=1_000, messages=10, seed=seed,
    ).with_(
        name="scale_100k",
        description="flat engine: 100 regions x 1,000 members, 10 messages "
        "at 5% loss",
    )


_SCALE_TIER: Dict[str, Callable[[], ScenarioSpec]] = {
    "scale_10k": scale_10k_spec,
    "scale_100k": scale_100k_spec,
}


def scale_scenario_names() -> List[str]:
    """All scale-tier names, in registration order."""
    return list(_SCALE_TIER)


def scale_scenarios() -> Dict[str, ScenarioSpec]:
    """Fresh name → spec snapshot of the tier."""
    return {name: factory() for name, factory in _SCALE_TIER.items()}


def get_scale_scenario(name: str) -> ScenarioSpec:
    """A fresh spec for scale-tier *name*; ``KeyError`` with catalogue."""
    try:
        factory = _SCALE_TIER[name]
    except KeyError:
        known = ", ".join(_SCALE_TIER)
        raise KeyError(f"unknown scale scenario {name!r}; known: {known}") from None
    return factory()


__all__ = [
    "get_scale_scenario",
    "scale_100k_spec",
    "scale_10k_spec",
    "scale_scenario_names",
    "scale_scenarios",
]
