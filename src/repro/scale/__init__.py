"""Mega-scale simulation path: array-backed members + region sharding.

The classic engine (:mod:`repro.protocol`) models every receiver as a
Python object with its own timers — faithful, but ~0.4M engine ops/s
caps validated runs at ~1,000 members.  This package trades per-member
event granularity for per-*(region, message)* aggregate events over
numpy struct-of-arrays state, which is what lets one machine reach
100,000 members (see EXPERIMENTS.md "Mega-scale methodology"):

* :mod:`repro.scale.pool` — :class:`FlatMemberPool`, the
  struct-of-arrays member state (receipt/buffer/long-term bitmaps,
  receive times, idle-timer deadlines);
* :mod:`repro.scale.engine` — :class:`FlatShard`, the region-sharded
  flat engine with epoch-barrier synchronization, plus
  :func:`run_flat` (serial, in-process sharded, or one OS process per
  shard) and the order-independent :class:`CommutativeTraceDigest`;
* :mod:`repro.scale.sharding` — mirror sharding for *classic* registry
  scenarios: every shard replays the full object-based simulation and
  keeps only the trace records its regions own, so the merged digest is
  byte-identical to a serial run;
* :mod:`repro.scale.scenarios` — the ``scale`` registry tier
  (``scale_10k``, ``scale_100k``) the CLI and benchmarks run.
"""

from repro.scale.engine import (
    CommutativeTraceDigest,
    FlatRunResult,
    FlatShard,
    run_flat,
)
from repro.scale.pool import FlatMemberPool
from repro.scale.scenarios import (
    get_scale_scenario,
    scale_scenario_names,
    scale_scenarios,
)
from repro.scale.sharding import MirrorShardResult, run_mirror_sharded

__all__ = [
    "CommutativeTraceDigest",
    "FlatMemberPool",
    "FlatRunResult",
    "FlatShard",
    "MirrorShardResult",
    "get_scale_scenario",
    "run_flat",
    "run_mirror_sharded",
    "scale_scenario_names",
    "scale_scenarios",
]
