"""The region-sharded flat simulation engine.

One :class:`FlatShard` advances a subset of a scenario's regions on its
own :class:`~repro.sim.engine.Simulator`, with all member state in a
:class:`~repro.scale.pool.FlatMemberPool`.  Instead of per-member
events, the engine schedules one event per *(region, message)*
transition and performs the member fan-out as a vectorized array
operation:

* ``_deliver`` — the IP multicast reaches a region: one Bernoulli draw
  vector decides who misses, receipt/buffer/deadline rows update in one
  shot;
* ``_detect`` → ``_round`` — the region's missing members detect the
  gap together and pick repair sources among the region's current
  bufferers (one vectorized random choice);
* ``_remote_serve`` / ``_apply`` — parent-region search when a region
  holds no copy, and the repair application;
* ``_sweep`` — the §3 idle-timer sweep: expired short-term copies flip
  the C/n long-term coin in one batch.

Sharding and determinism
------------------------
Regions are partitioned round-robin across shards.  Cross-region
traffic (remote requests and their repairs) never targets a simulator
directly: it goes to the shard's ``outbox`` and is exchanged at **epoch
barriers** whose width is the inter-region latency floor — no message
sent in epoch *k* can arrive before barrier *k*, so conservative
time-windowed synchronization is safe (classic PDES lookahead).  The
*serial* flat engine runs the same barrier loop with one shard, all
cross-shard arrivals carry a fixed sub-resolution offset (``XEPS``)
pushing them strictly past their barrier, and every random draw comes
from a per-``(purpose, region, seq)`` counter-derived stream — so a
sharded run makes exactly the draws, transitions and trace records of
the serial run, and :class:`CommutativeTraceDigest` (order-independent
by construction) matches byte-for-byte.

``processes=True`` runs each shard in its own OS process connected by
pipes; the epoch protocol is identical, so the digest still matches.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from multiprocessing import Pipe, Process
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.net.topology import RegionId
from repro.scale.pool import FlatMemberPool
from repro.scenario.materialize import build_config, build_hierarchy
from repro.scenario.spec import ScenarioSpec
from repro.sim.engine import Simulator
from repro.sim.randomness import derive_seed
from repro.sim.tracing import TraceLog, TraceRecord, record_line

#: Sub-resolution time offset added to every cross-shard arrival so it
#: lands strictly after its epoch barrier even when the send time plus
#: the hop latency rounds to exactly the barrier (2^-20 ms is exact in
#: binary floating point, so serial and sharded arithmetic agree).
XEPS = 2.0 ** -20

#: Epoch-barrier slack for floating-point deadline comparisons.
_TIME_EPS = 1e-9

#: Cross-shard message: (kind, dest region, seq, src region, arrival).
Message = Tuple[str, RegionId, int, RegionId, float]


_DIGEST_MOD = 1 << 256


class CommutativeTraceDigest:
    """Order-independent digest of a trace stream.

    Each record's canonical line (:func:`repro.sim.tracing.record_line`)
    is SHA-256 hashed and the 256-bit values are summed modulo 2^256;
    the printable digest appends the record count, so truncated streams
    cannot collide with complete ones.  Commutativity is what makes the
    digest shard-invariant: shards emit the same *set* of records as a
    serial run but interleave them differently, and merging is just
    adding the per-shard accumulators.
    """

    def __init__(self) -> None:
        self._acc = 0
        self.count = 0

    def attach(self, trace: TraceLog) -> "CommutativeTraceDigest":
        """Subscribe to *trace*; returns self for chaining."""
        trace.subscribe(self.update)
        return self

    def update(self, record: TraceRecord) -> None:
        """Hash one record (usable directly as a trace subscriber)."""
        line_hash = int.from_bytes(
            hashlib.sha256(record_line(record)).digest(), "big"
        )
        self._acc = (self._acc + line_hash) % _DIGEST_MOD
        self.count += 1

    def merge(self, acc: int, count: int) -> None:
        """Fold another digest's raw state in (shard reduction)."""
        self._acc = (self._acc + acc) % _DIGEST_MOD
        self.count += count

    @property
    def state(self) -> Tuple[int, int]:
        """The raw ``(accumulator, count)`` state (picklable)."""
        return self._acc, self.count

    def hexdigest(self) -> str:
        """``<64 hex chars>-<record count>``."""
        return f"{self._acc:064x}-{self.count}"


def _flat_unsupported(spec: ScenarioSpec) -> Optional[str]:
    """Why the flat engine cannot run *spec* (None = it can).

    The flat engine covers the scale-tier envelope: stream traffic over
    a static membership with independent per-receiver loss and the
    two-phase policy.  Everything else belongs to the object engine.
    """
    if spec.traffic.kind != "uniform" or spec.traffic.count < 1:
        return f"traffic kind {spec.traffic.kind!r} (need uniform with count >= 1)"
    if spec.loss.kind not in ("none", "bernoulli"):
        return f"loss kind {spec.loss.kind!r} (need none or bernoulli)"
    if spec.churn.kind != "none":
        return "churn (flat membership is static)"
    if spec.fec.mode != "off":
        return "FEC (no flat parity pipeline)"
    if spec.policy.kind != "two_phase":
        return f"policy kind {spec.policy.kind!r} (need two_phase)"
    if spec.policy.max_recovery_time is None:
        return "unbounded max_recovery_time (flat retries need a give-up bound)"
    return None


class _FlatBufferView:
    """Buffer facade for the oracle's index cross-check (always clean:
    the long-term bitmap *is* the index, there is nothing to drift)."""

    __slots__ = ()

    def check_index(self) -> Tuple[()]:
        return ()


class _FlatPolicyView:
    __slots__ = ()
    buffer = _FlatBufferView()


_POLICY_VIEW = _FlatPolicyView()


class FlatMemberView:
    """One member's oracle-facing view over the pool arrays.

    Built lazily (only for :meth:`FlatShard.alive_members`, i.e. the
    oracle's end-of-run sweep); presents the same surface as
    :class:`~repro.protocol.member.RrmpMember` where the invariants
    look.
    """

    __slots__ = ("node_id", "_pool")

    policy = _POLICY_VIEW

    def __init__(self, node_id: int, pool: FlatMemberPool) -> None:
        self.node_id = node_id
        self._pool = pool

    def unresolved_gaps(self) -> List[int]:
        return self._pool.member_unresolved_gaps(self.node_id)

    def buffered_seqs(self) -> List[int]:
        return self._pool.member_buffered_seqs(self.node_id)

    def is_buffering(self, seq: int) -> bool:
        return self._pool.member_is_buffering(self.node_id, seq)

    def active_recovery_seqs(self) -> Tuple[()]:
        # Flat recoveries live in (region, seq) events, not per-member
        # processes; at quiescence none can be pending by construction.
        return ()


class FlatShard:
    """One shard of a flat run: a region subset on its own simulator.

    Exposes the simulation surface the invariant oracle inspects
    (``trace``, ``sim``, ``config``, ``hierarchy``,
    :meth:`alive_members`), so ``InvariantOracle().attach(shard)`` works
    unchanged — every invariant is member- or region-local, which is
    what makes per-shard validation of a sharded run sound.
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        owned: Optional[Sequence[RegionId]] = None,
        keep_records: bool = False,
        digest: bool = False,
    ) -> None:
        problem = _flat_unsupported(spec)
        if problem is not None:
            raise ValueError(f"flat engine cannot run spec {spec.name!r}: {problem}")
        self.spec = spec
        self.hierarchy = build_hierarchy(spec.topology)
        self.config = build_config(spec.policy, spec.fec)
        self.sim = Simulator()
        self.trace = TraceLog(keep_records=keep_records)
        self.digest = CommutativeTraceDigest().attach(self.trace) if digest else None
        self.pool = FlatMemberPool(self.hierarchy, spec.traffic.count)
        all_regions = self.pool.region_ids
        self.owned: List[RegionId] = sorted(owned) if owned is not None else all_regions
        unknown = set(self.owned) - set(all_regions)
        if unknown:
            raise ValueError(f"unknown shard regions: {sorted(unknown)}")

        # Derived protocol parameters.
        topology = spec.topology
        policy = spec.policy
        self.intra = topology.intra_one_way
        self.inter = topology.inter_one_way
        self.idle_threshold = policy.idle_threshold
        self.long_term_c = policy.c
        self.session_interval = policy.session_interval
        self.max_recovery_time = policy.max_recovery_time
        self.loss_p = spec.loss.p if spec.loss.kind == "bernoulli" else 0.0
        # A remote retry must outlive one full parent round trip.
        self.remote_retry = 2.0 * max(self.inter, self.intra) + self.intra + 1.0

        # Sender: first member of the first root region, its copies
        # pinned long-term (the sending application always holds its own
        # stream, so the group is never globally copyless).
        self.sender_node = min(
            self.hierarchy.regions[rid].members[0]
            for rid in all_regions
            if self.hierarchy.regions[rid].parent_id is None
        )
        self.sender_region = self.hierarchy.region_id_of(self.sender_node)

        self.outbox: List[Message] = []
        self._rngs: Dict[Tuple[Any, ...], np.random.Generator] = {}
        self._detected_at: Dict[Tuple[RegionId, int], float] = {}
        self._next_sweep: Dict[RegionId, Optional[float]] = {}
        self._recovery_latency_sum = 0.0
        self._recovery_count = 0

        # Region hop distances from the sender and the initial multicast
        # deliveries for the regions this shard owns.  Delivery times are
        # spec-derived, so every shard schedules its own regions up
        # front — the multicast itself never crosses the shard fabric.
        traffic = spec.traffic
        for region_id in self.owned:
            probe = self.hierarchy.regions[region_id].members[0]
            hops = self.hierarchy.region_distance(self.sender_node, probe)
            latency = self.intra if hops == 0 else self.inter * hops
            for seq in range(1, traffic.count + 1):
                send_time = traffic.start + (seq - 1) * traffic.interval
                self.sim.at(send_time + latency, self._deliver, region_id, seq)

    # ------------------------------------------------------------------
    # Deterministic randomness
    # ------------------------------------------------------------------
    def _rng(self, *key: Any) -> np.random.Generator:
        """The numpy stream for *key*, derived from the master seed.

        Streams are keyed per (purpose, region, seq[, src region]) so a
        shard draws exactly what the serial run draws for its regions,
        no matter how the other regions' events interleave.
        """
        generator = self._rngs.get(key)
        if generator is None:
            generator = np.random.default_rng(
                derive_seed(self.spec.seed, ("flat",) + key)
            )
            self._rngs[key] = generator
        return generator

    # ------------------------------------------------------------------
    # Protocol transitions (one event per region x message)
    # ------------------------------------------------------------------
    def _deliver(self, region_id: RegionId, seq: int) -> None:
        now = self.sim.now
        start, stop = self.pool.rows(region_id)
        col = seq - 1
        count = stop - start
        if self.loss_p > 0.0:
            missed = self._rng("mcast", region_id, seq).random(count) < self.loss_p
        else:
            missed = np.zeros(count, dtype=bool)
        sender_here = start <= self.sender_node < stop
        if sender_here:
            missed[self.sender_node - start] = False
        got = ~missed
        pool = self.pool
        pool.received[start:stop, col] = got
        pool.buffered[start:stop, col] = got
        pool.receive_time[start:stop, col][got] = now
        pool.idle_deadline[start:stop, col][got] = now + self.idle_threshold
        if sender_here:
            pool.long_term[self.sender_node, col] = True
            pool.idle_deadline[self.sender_node, col] = np.inf
        trace = self.trace
        if trace.enabled:
            for offset in np.nonzero(got)[0]:
                node = start + int(offset)
                trace.emit(now, "member_received", node=node, seq=seq, via="multicast")
                trace.emit(now, "buffer_add", node=node, seq=seq)
            if sender_here:
                trace.emit(now, "long_term_selected",
                           node=self.sender_node, seq=seq, via="sender")
        if missed.any():
            self.sim.at(now + self._detect_delay(seq), self._detect, region_id, seq)
        if got.any():
            self._ensure_sweep(region_id, now + self.idle_threshold)

    def _detect_delay(self, seq: int) -> float:
        """How long a missing region takes to notice the gap.

        Mid-stream losses surface when the *next* message arrives (one
        send interval); the final message has no successor, so its gap
        waits for the session heartbeat.
        """
        if seq < self.spec.traffic.count:
            return self.spec.traffic.interval
        if self.session_interval is not None:
            return self.session_interval
        return self.spec.traffic.interval

    def _detect(self, region_id: RegionId, seq: int) -> None:
        now = self.sim.now
        start, stop = self.pool.rows(region_id)
        col = seq - 1
        missing = ~self.pool.received[start:stop, col]
        if not missing.any():
            return
        self._detected_at[(region_id, seq)] = now
        trace = self.trace
        if trace.enabled:
            for offset in np.nonzero(missing)[0]:
                trace.emit(now, "loss_detected", node=start + int(offset), seq=seq)
        self._round(region_id, seq)

    def _round(self, region_id: RegionId, seq: int) -> None:
        """One recovery round: local repair, or escalate to the parent."""
        now = self.sim.now
        pool = self.pool
        start, stop = pool.rows(region_id)
        col = seq - 1
        missing = ~pool.received[start:stop, col] & ~pool.given_up[start:stop, col]
        if not missing.any():
            return
        detected = self._detected_at[(region_id, seq)]
        if now - detected > self.max_recovery_time + _TIME_EPS:
            pool.given_up[start:stop, col] |= missing
            trace = self.trace
            if trace.enabled:
                for offset in np.nonzero(missing)[0]:
                    trace.emit(now, "reliability_violation",
                               node=start + int(offset), seq=seq,
                               elapsed=now - detected)
            return
        holders = np.nonzero(pool.buffered[start:stop, col])[0]
        if holders.size:
            requesters = np.nonzero(missing)[0]
            picks = self._rng("recovery", region_id, seq).integers(
                0, holders.size, requesters.size
            )
            served = start + holders[picks]
            # Requests refresh the chosen holders' idle timers on
            # arrival (§3.1 feedback) — but never un-pin +inf entries.
            np.maximum.at(
                pool.idle_deadline, (served, col),
                now + self.intra + self.idle_threshold,
            )
            self.sim.at(now + 2.0 * self.intra, self._apply,
                        region_id, seq, "local-repair")
        else:
            parent = self.hierarchy.regions[region_id].parent_id
            if parent is not None:
                self.outbox.append(
                    ("serve", parent, seq, region_id, now + self.inter + XEPS)
                )
            # Retry until served or the give-up bound trips: the parent
            # (or this region, via its own recovery) may only hold a
            # copy later.
            self.sim.at(now + self.remote_retry, self._round, region_id, seq)

    def _remote_serve(self, region_id: RegionId, seq: int,
                      child_region: RegionId) -> None:
        """A child region's remote request reaches this (parent) region."""
        now = self.sim.now
        pool = self.pool
        start, stop = pool.rows(region_id)
        col = seq - 1
        holders = np.nonzero(pool.buffered[start:stop, col])[0]
        if not holders.size:
            return  # child keeps retrying; we may hold a copy later
        rng = self._rng("serve", region_id, seq, child_region)
        served = start + int(holders[int(rng.integers(0, holders.size))])
        pool.idle_deadline[served, col] = max(
            pool.idle_deadline[served, col], now + self.idle_threshold
        )
        if self.trace.enabled:
            self.trace.emit(now, "remote_request_served", node=served, seq=seq,
                            to_region=child_region)
        self.outbox.append(
            ("repair", child_region, seq, region_id, now + self.inter + XEPS)
        )

    def _apply(self, region_id: RegionId, seq: int, via: str) -> None:
        """A repair arrives: every still-missing member delivers+buffers."""
        now = self.sim.now
        pool = self.pool
        start, stop = pool.rows(region_id)
        col = seq - 1
        missing = ~pool.received[start:stop, col] & ~pool.given_up[start:stop, col]
        if not missing.any():
            return
        pool.received[start:stop, col] |= missing
        pool.buffered[start:stop, col] |= missing
        pool.receive_time[start:stop, col][missing] = now
        pool.idle_deadline[start:stop, col][missing] = now + self.idle_threshold
        latency = now - self._detected_at[(region_id, seq)]
        recovered = int(missing.sum())
        self._recovery_latency_sum += latency * recovered
        self._recovery_count += recovered
        trace = self.trace
        if trace.enabled:
            for offset in np.nonzero(missing)[0]:
                node = start + int(offset)
                trace.emit(now, "member_received", node=node, seq=seq, via=via)
                trace.emit(now, "buffer_add", node=node, seq=seq)
                trace.emit(now, "recovery_completed", node=node, seq=seq,
                           latency=latency)
        self._ensure_sweep(region_id, now + self.idle_threshold)

    # ------------------------------------------------------------------
    # Idle sweeps (the §3 short-term phase, batched per region)
    # ------------------------------------------------------------------
    def _ensure_sweep(self, region_id: RegionId, when: float) -> None:
        current = self._next_sweep.get(region_id)
        if current is not None and current <= when + _TIME_EPS:
            return
        self._next_sweep[region_id] = when
        self.sim.at(when, self._sweep, region_id)

    def _sweep(self, region_id: RegionId) -> None:
        now = self.sim.now
        pool = self.pool
        start, stop = pool.rows(region_id)
        buffered = pool.buffered[start:stop]
        long_term = pool.long_term[start:stop]
        deadline = pool.idle_deadline[start:stop]
        due = buffered & ~long_term & (deadline <= now + _TIME_EPS)
        if due.any():
            rows, cols = np.nonzero(due)
            keep_p = min(1.0, self.long_term_c / (stop - start))
            kept = self._rng("coin", region_id).random(rows.size) < keep_p
            trace = self.trace
            keep_rows, keep_cols = rows[kept], cols[kept]
            long_term[keep_rows, keep_cols] = True
            deadline[keep_rows, keep_cols] = np.inf
            drop_rows, drop_cols = rows[~kept], cols[~kept]
            buffered[drop_rows, drop_cols] = False
            deadline[drop_rows, drop_cols] = np.inf
            if trace.enabled:
                for row, col in zip(keep_rows, keep_cols):
                    trace.emit(now, "long_term_selected",
                               node=start + int(row), seq=int(col) + 1,
                               via="coin-flip")
                for row, col in zip(drop_rows, drop_cols):
                    node = start + int(row)
                    seq = int(col) + 1
                    duration = now - pool.receive_time[node, int(col)]
                    trace.emit(now, "buffer_discard", node=node, seq=seq,
                               reason="idle", was_long_term=False,
                               duration=float(duration))
        pending = buffered & ~long_term & np.isfinite(deadline)
        self._next_sweep[region_id] = None
        if pending.any():
            self._ensure_sweep(region_id, float(deadline[pending].min()))

    # ------------------------------------------------------------------
    # Shard fabric
    # ------------------------------------------------------------------
    def drain_outbox(self) -> List[Message]:
        """Take this epoch's cross-shard messages."""
        messages, self.outbox = self.outbox, []
        return messages

    def deliver_inbound(self, message: Message) -> None:
        """Schedule one cross-shard message for its arrival time."""
        kind, region_id, seq, src_region, arrival = message
        if kind == "serve":
            self.sim.at(arrival, self._remote_serve, region_id, seq, src_region)
        elif kind == "repair":
            self.sim.at(arrival, self._apply, region_id, seq, "remote-repair")
        else:  # pragma: no cover - fabric corruption guard
            raise ValueError(f"unknown cross-shard message kind {kind!r}")

    # ------------------------------------------------------------------
    # Oracle surface + accounting
    # ------------------------------------------------------------------
    def alive_members(self) -> List[FlatMemberView]:
        """Views of every member this shard owns (oracle end sweep)."""
        views: List[FlatMemberView] = []
        for region_id in self.owned:
            start, stop = self.pool.rows(region_id)
            views.extend(
                FlatMemberView(node, self.pool) for node in range(start, stop)
            )
        return views

    def stats(self) -> Dict[str, Any]:
        """This shard's contribution to the merged run summary."""
        delivered = 0
        total = 0
        violations = 0
        for region_id in self.owned:
            rows = self.pool.rows(region_id)
            delivered += self.pool.delivered_pairs(rows)
            violations += self.pool.given_up_pairs(rows)
            total += (rows[1] - rows[0]) * self.pool.message_count
        return {
            "delivered_pairs": delivered,
            "total_pairs": total,
            "reliability_violations": violations,
            "recoveries": self._recovery_count,
            "recovery_latency_sum_ms": self._recovery_latency_sum,
            "events_fired": self.sim.events_fired,
            "sim_time_ms": self.sim.now,
            "trace_records": self.digest.count if self.digest else None,
        }


# ----------------------------------------------------------------------
# Orchestration
# ----------------------------------------------------------------------
@dataclass
class FlatRunResult:
    """The merged outcome of a flat run (any shard count)."""

    spec_name: str
    seed: int
    shards: int
    members: int
    messages: int
    delivered_fraction: float
    reliability_violations: int
    recoveries: int
    mean_recovery_latency_ms: float
    events_fired: int
    sim_time_ms: float
    trace_digest: Optional[str] = None
    trace_records: Optional[int] = None
    invariant_violations: Optional[int] = None
    oracle_records_checked: Optional[int] = None
    engines: List[FlatShard] = field(default_factory=list, repr=False)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready summary (the ``scenarios run`` payload shape)."""
        payload: Dict[str, Any] = {
            "scenario": self.spec_name,
            "seed": self.seed,
            "engine": "flat",
            "shards": self.shards,
            "members": self.members,
            "messages": self.messages,
            "delivered_fraction": self.delivered_fraction,
            "reliability_violations": self.reliability_violations,
            "recoveries": self.recoveries,
            "mean_recovery_latency_ms": self.mean_recovery_latency_ms,
            "events_fired": self.events_fired,
            "sim_time_ms": self.sim_time_ms,
        }
        if self.trace_digest is not None:
            payload["trace_digest"] = self.trace_digest
            payload["trace_records"] = self.trace_records
        if self.invariant_violations is not None:
            payload["invariant_violations"] = self.invariant_violations
        return payload


def partition_regions(region_ids: Sequence[RegionId],
                      shards: int) -> List[List[RegionId]]:
    """Round-robin region assignment over sorted ids (deterministic)."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    parts: List[List[RegionId]] = [[] for _ in range(shards)]
    for index, region_id in enumerate(sorted(region_ids)):
        parts[index % shards].append(region_id)
    return [part for part in parts if part]


def _lookahead(spec: ScenarioSpec) -> float:
    """Epoch width: the inter-region latency floor (min 1 ms so zero-
    latency toy specs still make progress)."""
    return max(spec.topology.inter_one_way, 1.0)


def _sorted_messages(messages: List[Message]) -> List[Message]:
    # (arrival, kind, dest, seq, src): a total order independent of
    # which shard produced which message.
    return sorted(messages, key=lambda m: (m[4], m[0], m[1], m[2], m[3]))


def run_flat(
    spec: ScenarioSpec,
    shards: int = 1,
    processes: bool = False,
    digest: bool = True,
    keep_records: bool = False,
    oracle: bool = False,
    max_epochs: int = 1_000_000,
) -> FlatRunResult:
    """Run *spec* on the flat engine and merge the shard results.

    ``shards=1`` is the serial flat run — it uses the *same* epoch
    barrier loop, which is why sharded digests match it exactly.
    ``processes=True`` puts each shard in its own OS process (pipes
    carry the epoch protocol); results are identical, so tests assert
    process-mode digests against in-process ones.
    """
    parts = partition_regions(
        sorted(build_hierarchy(spec.topology).regions), shards
    )
    if processes and len(parts) > 1:
        return _run_flat_processes(spec, parts, digest=digest, oracle=oracle,
                                   max_epochs=max_epochs)

    engines = [
        FlatShard(spec, owned=part, keep_records=keep_records, digest=digest)
        for part in parts
    ]
    oracles = []
    if oracle:
        from repro.validate.oracle import InvariantOracle

        oracles = [InvariantOracle().attach(engine) for engine in engines]

    region_shard: Dict[RegionId, int] = {}
    for index, part in enumerate(parts):
        for region_id in part:
            region_shard[region_id] = index

    lookahead = _lookahead(spec)
    barrier = 0.0
    pending: List[Message] = []
    for _ in range(max_epochs):
        if not pending and not any(e.sim.pending_events for e in engines):
            break
        barrier += lookahead
        for message in pending:
            engines[region_shard[message[1]]].deliver_inbound(message)
        pending = []
        produced: List[Message] = []
        for engine in engines:
            engine.sim.run(until=barrier)
            produced.extend(engine.drain_outbox())
        pending = _sorted_messages(produced)
    else:  # pragma: no cover - runaway guard
        raise RuntimeError(f"flat run did not settle within {max_epochs} epochs")

    for orc in oracles:
        orc.finish()
    return _merge_results(
        spec, engines=engines,
        shard_stats=[engine.stats() for engine in engines],
        digest_states=[engine.digest.state for engine in engines]
        if digest else None,
        oracle_stats=[(o.violation_count, o.records_checked) for o in oracles]
        if oracle else None,
        shard_count=len(parts),
    )


def _merge_results(
    spec: ScenarioSpec,
    engines: List[FlatShard],
    shard_stats: List[Dict[str, Any]],
    digest_states: Optional[List[Tuple[int, int]]],
    oracle_stats: Optional[List[Tuple[int, int]]],
    shard_count: int,
) -> FlatRunResult:
    delivered = sum(stats["delivered_pairs"] for stats in shard_stats)
    total = sum(stats["total_pairs"] for stats in shard_stats)
    recoveries = sum(stats["recoveries"] for stats in shard_stats)
    latency_sum = sum(stats["recovery_latency_sum_ms"] for stats in shard_stats)
    digest_hex = None
    digest_count = None
    if digest_states is not None:
        merged = CommutativeTraceDigest()
        for acc, count in digest_states:
            merged.merge(acc, count)
        digest_hex = merged.hexdigest()
        digest_count = merged.count
    violations = None
    checked = None
    if oracle_stats is not None:
        violations = sum(item[0] for item in oracle_stats)
        checked = sum(item[1] for item in oracle_stats)
    return FlatRunResult(
        spec_name=spec.name,
        seed=spec.seed,
        shards=shard_count,
        members=total // max(spec.traffic.count, 1),
        messages=spec.traffic.count,
        delivered_fraction=delivered / total if total else 1.0,
        reliability_violations=sum(
            stats["reliability_violations"] for stats in shard_stats
        ),
        recoveries=recoveries,
        mean_recovery_latency_ms=latency_sum / recoveries if recoveries else 0.0,
        events_fired=sum(stats["events_fired"] for stats in shard_stats),
        sim_time_ms=max(stats["sim_time_ms"] for stats in shard_stats),
        trace_digest=digest_hex,
        trace_records=digest_count,
        invariant_violations=violations,
        oracle_records_checked=checked,
        engines=engines,
    )


# ----------------------------------------------------------------------
# Process-per-shard mode
# ----------------------------------------------------------------------
def _shard_worker(conn, spec_json: str, owned: List[RegionId],
                  digest: bool, oracle: bool) -> None:
    """One shard in its own process: epoch protocol over a pipe."""
    spec = ScenarioSpec.from_json(spec_json)
    engine = FlatShard(spec, owned=owned, digest=digest)
    orc = None
    if oracle:
        from repro.validate.oracle import InvariantOracle

        orc = InvariantOracle().attach(engine)
    while True:
        command = conn.recv()
        if command[0] == "epoch":
            _, barrier, inbound = command
            for message in inbound:
                engine.deliver_inbound(message)
            engine.sim.run(until=barrier)
            conn.send((engine.sim.pending_events, engine.drain_outbox()))
        elif command[0] == "finish":
            if orc is not None:
                orc.finish()
            conn.send({
                "stats": engine.stats(),
                "digest": engine.digest.state if engine.digest else None,
                "oracle": (orc.violation_count, orc.records_checked)
                if orc else None,
            })
            conn.close()
            return


def _run_flat_processes(spec: ScenarioSpec, parts: List[List[RegionId]],
                        digest: bool, oracle: bool,
                        max_epochs: int) -> FlatRunResult:
    spec_json = spec.to_json()
    pipes = []
    workers = []
    try:
        for part in parts:
            parent_conn, child_conn = Pipe()
            worker = Process(
                target=_shard_worker,
                args=(child_conn, spec_json, part, digest, oracle),
                daemon=True,
            )
            worker.start()
            child_conn.close()
            pipes.append(parent_conn)
            workers.append(worker)

        region_shard: Dict[RegionId, int] = {}
        for index, part in enumerate(parts):
            for region_id in part:
                region_shard[region_id] = index

        lookahead = _lookahead(spec)
        barrier = 0.0
        pending: List[Message] = []
        busy = [True] * len(parts)
        for _ in range(max_epochs):
            if not pending and not any(busy):
                break
            barrier += lookahead
            inboxes: List[List[Message]] = [[] for _ in parts]
            for message in pending:
                inboxes[region_shard[message[1]]].append(message)
            for conn, inbox in zip(pipes, inboxes):
                conn.send(("epoch", barrier, inbox))
            produced: List[Message] = []
            for index, conn in enumerate(pipes):
                queue_size, outbox = conn.recv()
                busy[index] = queue_size > 0
                produced.extend(outbox)
            pending = _sorted_messages(produced)
        else:  # pragma: no cover - runaway guard
            raise RuntimeError(
                f"flat run did not settle within {max_epochs} epochs"
            )

        finals = []
        for conn in pipes:
            conn.send(("finish",))
            finals.append(conn.recv())
    finally:
        for conn in pipes:
            conn.close()
        for worker in workers:
            worker.join(timeout=30)
            if worker.is_alive():  # pragma: no cover - hang guard
                worker.terminate()

    return _merge_results(
        spec,
        engines=[],
        shard_stats=[final["stats"] for final in finals],
        digest_states=[final["digest"] for final in finals] if digest else None,
        oracle_stats=[final["oracle"] for final in finals] if oracle else None,
        shard_count=len(parts),
    )


__all__ = [
    "XEPS",
    "CommutativeTraceDigest",
    "FlatMemberView",
    "FlatRunResult",
    "FlatShard",
    "partition_regions",
    "run_flat",
]
