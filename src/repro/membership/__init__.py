"""Membership dynamics substrate (system S8 in DESIGN.md).

Gossip-style failure detection (ref [13]), scripted and random churn
schedules, and approximate (stale) membership views.
"""

from repro.membership.churn import (
    EVENT_CRASH,
    EVENT_JOIN,
    EVENT_LEAVE,
    ChurnEvent,
    ChurnSchedule,
    random_churn,
)
from repro.membership.failure_detector import (
    GossipFailureDetector,
    HeartbeatGossip,
    attach_failure_detectors,
)
from repro.membership.view import StaleView

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "EVENT_CRASH",
    "EVENT_JOIN",
    "EVENT_LEAVE",
    "GossipFailureDetector",
    "HeartbeatGossip",
    "StaleView",
    "attach_failure_detectors",
    "random_churn",
]
