"""Join/leave/crash schedules for membership-dynamics experiments.

The paper's §3.2 motivates the handoff rule with churn: "Receivers may
join or leave a multicast session dynamically."  :class:`ChurnSchedule`
scripts membership events against a running
:class:`~repro.protocol.rrmp.RrmpSimulation`:

* **leave** — graceful: the member hands its long-term buffer to
  random peers before departing;
* **crash** — fail-stop: no handoff, buffered state is lost (the risk
  the handoff rule cannot cover);
* **join** — a fresh member enters a region mid-session.

:func:`random_churn` generates a schedule with exponential inter-event
times for soak-style tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from repro.net.topology import NodeId, RegionId
from repro.protocol.rrmp import RrmpSimulation

EVENT_LEAVE = "leave"
EVENT_CRASH = "crash"
EVENT_JOIN = "join"


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted membership change.

    ``lazy=True`` marks a leave/crash whose victim is resolved from the
    then-alive membership at fire time (``node`` stays ``None`` until
    then); :func:`random_churn` generates such events so they compose
    correctly with each other.
    """

    time: float
    action: str  # EVENT_LEAVE | EVENT_CRASH | EVENT_JOIN
    node: Optional[NodeId] = None      # for leave/crash
    region: Optional[RegionId] = None  # for join
    lazy: bool = False                 # victim resolved at fire time

    def __post_init__(self) -> None:
        if self.action not in (EVENT_LEAVE, EVENT_CRASH, EVENT_JOIN):
            raise ValueError(f"unknown churn action {self.action!r}")
        if (self.action in (EVENT_LEAVE, EVENT_CRASH) and self.node is None
                and not self.lazy):
            raise ValueError(f"{self.action} event requires a node")
        if self.action == EVENT_JOIN and self.region is None:
            raise ValueError("join event requires a region")


class ChurnSchedule:
    """Applies a list of :class:`ChurnEvent` to a simulation.

    Every event — including lazily-resolved leave/crash events — lives
    in ``events``, so inspection and replay tooling see the complete
    schedule; ``applied`` records events in fire order (lazy events with
    their victim filled in).  Scheduling the same event (identical time,
    action, node and region) twice on one simulation — e.g. by
    constructing a second schedule from the same list — raises
    ``ValueError`` instead of silently doubling the churn.
    """

    def __init__(
        self,
        simulation: RrmpSimulation,
        events: Sequence[ChurnEvent],
        victim_resolver: Optional[Callable[[], Optional[NodeId]]] = None,
    ) -> None:
        self.simulation = simulation
        self.victim_resolver = victim_resolver
        self.events = sorted(events, key=lambda event: event.time)
        self.applied: List[ChurnEvent] = []
        registered = getattr(simulation, "_churn_event_keys", None)
        if registered is None:
            registered = set()
            simulation._churn_event_keys = registered
        for event in self.events:
            key = (event.time, event.action, event.node, event.region)
            if key in registered:
                raise ValueError(
                    f"duplicate churn event: {event.action} at t={event.time!r} "
                    f"(node={event.node!r}, region={event.region!r}) is already "
                    "scheduled on this simulation"
                )
            registered.add(key)
        for event in self.events:
            simulation.sim.at(event.time, self._apply, event)

    def _apply(self, event: ChurnEvent) -> None:
        if event.action == EVENT_JOIN:
            assert event.region is not None
            self.simulation.add_member(event.region)
        else:
            node = event.node
            if node is None:
                resolver = self.victim_resolver
                node = resolver() if resolver is not None else None
                if node is None:
                    return  # nobody eligible; schedule was optimistic
                event = replace(event, node=node)
            member = self.simulation.members.get(node)
            if member is None or not member.alive:
                return  # already gone; schedule was optimistic
            if event.action == EVENT_LEAVE:
                member.leave()
            else:
                member.crash()
        self.applied.append(event)


def random_churn(
    simulation: RrmpSimulation,
    rng: random.Random,
    duration: float,
    leave_rate: float = 0.0,
    crash_rate: float = 0.0,
    join_rate: float = 0.0,
    protect: Sequence[NodeId] = (),
) -> ChurnSchedule:
    """Generate and install Poisson churn over ``[0, duration]``.

    Rates are events per millisecond.  ``protect`` lists nodes that
    never leave or crash (typically the sender).  Leave/crash victims
    are drawn lazily at event time from the then-alive membership, so
    generated events compose correctly with each other.
    """
    def times(rate: float) -> List[float]:
        result, t = [], 0.0
        if rate <= 0:
            return result
        while True:
            t += rng.expovariate(rate)
            if t >= duration:
                return result
            result.append(t)

    protected = set(protect)

    def pick_victim() -> Optional[NodeId]:
        alive = [m.node_id for m in simulation.alive_members()
                 if m.node_id not in protected]
        return rng.choice(alive) if alive else None

    # Leave/crash victims are resolved at fire time (lazy events), but
    # the generated schedule itself is fully recorded on the
    # ChurnSchedule so inspection/replay tooling can see it.
    events = [
        ChurnEvent(time=t, action=EVENT_LEAVE, lazy=True)
        for t in times(leave_rate)
    ]
    events += [
        ChurnEvent(time=t, action=EVENT_CRASH, lazy=True)
        for t in times(crash_rate)
    ]
    region_ids = sorted(simulation.hierarchy.regions)
    events += [
        ChurnEvent(time=t, action=EVENT_JOIN, region=rng.choice(region_ids))
        for t in times(join_rate)
    ]
    return ChurnSchedule(simulation, events, victim_resolver=pick_victim)
