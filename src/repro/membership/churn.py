"""Join/leave/crash schedules for membership-dynamics experiments.

The paper's §3.2 motivates the handoff rule with churn: "Receivers may
join or leave a multicast session dynamically."  :class:`ChurnSchedule`
scripts membership events against a running
:class:`~repro.protocol.rrmp.RrmpSimulation`:

* **leave** — graceful: the member hands its long-term buffer to
  random peers before departing;
* **crash** — fail-stop: no handoff, buffered state is lost (the risk
  the handoff rule cannot cover);
* **join** — a fresh member enters a region mid-session.

:func:`random_churn` generates a schedule with exponential inter-event
times for soak-style tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.net.topology import NodeId, RegionId
from repro.protocol.rrmp import RrmpSimulation

EVENT_LEAVE = "leave"
EVENT_CRASH = "crash"
EVENT_JOIN = "join"


@dataclass(frozen=True)
class ChurnEvent:
    """One scripted membership change."""

    time: float
    action: str  # EVENT_LEAVE | EVENT_CRASH | EVENT_JOIN
    node: Optional[NodeId] = None      # for leave/crash
    region: Optional[RegionId] = None  # for join

    def __post_init__(self) -> None:
        if self.action not in (EVENT_LEAVE, EVENT_CRASH, EVENT_JOIN):
            raise ValueError(f"unknown churn action {self.action!r}")
        if self.action in (EVENT_LEAVE, EVENT_CRASH) and self.node is None:
            raise ValueError(f"{self.action} event requires a node")
        if self.action == EVENT_JOIN and self.region is None:
            raise ValueError("join event requires a region")


class ChurnSchedule:
    """Applies a list of :class:`ChurnEvent` to a simulation."""

    def __init__(self, simulation: RrmpSimulation, events: Sequence[ChurnEvent]) -> None:
        self.simulation = simulation
        self.events = sorted(events, key=lambda event: event.time)
        self.applied: List[ChurnEvent] = []
        for event in self.events:
            simulation.sim.at(event.time, self._apply, event)

    def _apply(self, event: ChurnEvent) -> None:
        if event.action == EVENT_JOIN:
            assert event.region is not None
            self.simulation.add_member(event.region)
        else:
            assert event.node is not None
            member = self.simulation.members.get(event.node)
            if member is None or not member.alive:
                return  # already gone; schedule was optimistic
            if event.action == EVENT_LEAVE:
                member.leave()
            else:
                member.crash()
        self.applied.append(event)


def random_churn(
    simulation: RrmpSimulation,
    rng: random.Random,
    duration: float,
    leave_rate: float = 0.0,
    crash_rate: float = 0.0,
    join_rate: float = 0.0,
    protect: Sequence[NodeId] = (),
) -> ChurnSchedule:
    """Generate and install Poisson churn over ``[0, duration]``.

    Rates are events per millisecond.  ``protect`` lists nodes that
    never leave or crash (typically the sender).  Leave/crash victims
    are drawn lazily at event time from the then-alive membership, so
    generated events compose correctly with each other.
    """
    def times(rate: float) -> List[float]:
        result, t = [], 0.0
        if rate <= 0:
            return result
        while True:
            t += rng.expovariate(rate)
            if t >= duration:
                return result
            result.append(t)

    protected = set(protect)

    def pick_victim() -> Optional[NodeId]:
        alive = [m.node_id for m in simulation.alive_members()
                 if m.node_id not in protected]
        return rng.choice(alive) if alive else None

    # Leave/crash events resolve their victim at fire time through a
    # wrapper event, so we install them directly on the engine.
    schedule = ChurnSchedule(simulation, [])

    def fire(action: str) -> None:
        victim = pick_victim()
        if victim is None:
            return
        event = ChurnEvent(time=simulation.sim.now, action=action, node=victim)
        schedule._apply(event)

    for t in times(leave_rate):
        simulation.sim.at(t, fire, EVENT_LEAVE)
    for t in times(crash_rate):
        simulation.sim.at(t, fire, EVENT_CRASH)
    region_ids = sorted(simulation.hierarchy.regions)
    for t in times(join_rate):
        region = rng.choice(region_ids)
        simulation.sim.at(
            t, schedule._apply, ChurnEvent(time=t, action=EVENT_JOIN, region=region)
        )
    return schedule
