"""Gossip-style failure detection (paper ref [13]).

RRMP builds on "our previous work of the Bimodal Multicast protocol and
the Gossip-style Failure Detection protocol" (van Renesse, Minsky,
Hayden — Middleware '98).  Each member keeps a heartbeat counter per
known peer; periodically it increments its own counter and gossips its
table to a few random peers, merging by maximum.  A peer whose counter
has not advanced within ``suspect_timeout`` is *suspected*.

In this reproduction the detector serves the churn experiments: crashed
members (no graceful handoff) are detected and can be pruned from
region views, and the detector's accuracy/latency is itself unit- and
property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Set

from repro.net.packet import KIND_CONTROL
from repro.net.topology import NodeId
from repro.protocol.member import RrmpMember
from repro.protocol.messages import CONTROL_WIRE_SIZE
from repro.sim import PeriodicTask


@dataclass(frozen=True)
class HeartbeatGossip:
    """One gossip round's payload: the sender's full heartbeat table."""

    sender: NodeId
    heartbeats: tuple  # tuple of (member, counter) pairs
    kind: str = field(default=KIND_CONTROL, repr=False)
    wire_size: int = field(default=CONTROL_WIRE_SIZE, repr=False)


class GossipFailureDetector:
    """Per-member gossip failure detector.

    Parameters
    ----------
    member:
        The hosting member; the detector shares its network endpoint
        via the ``extra_handlers`` hook.
    peers_provider:
        Callable returning the current monitoring scope (usually the
        member's region).
    gossip_interval:
        Heartbeat/gossip period.
    suspect_timeout:
        A peer is suspected if its counter has not advanced for this
        long.  Classic sizing: several gossip intervals times log(n).
    fanout:
        Gossip targets per round.
    on_suspect:
        Optional callback invoked once per newly-suspected peer.
    """

    def __init__(
        self,
        member: RrmpMember,
        peers_provider: Callable[[], Sequence[NodeId]],
        gossip_interval: float = 20.0,
        suspect_timeout: float = 120.0,
        fanout: int = 1,
        on_suspect: Callable[[NodeId], None] = lambda _node: None,
    ) -> None:
        if fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {fanout}")
        if suspect_timeout <= gossip_interval:
            raise ValueError("suspect_timeout must exceed gossip_interval")
        self.member = member
        self.peers_provider = peers_provider
        self.gossip_interval = gossip_interval
        self.suspect_timeout = suspect_timeout
        self.fanout = fanout
        self.on_suspect = on_suspect
        self.heartbeats: Dict[NodeId, int] = {member.node_id: 0}
        #: Local time at which each peer's counter last advanced.
        self.last_advanced: Dict[NodeId, float] = {member.node_id: member.sim.now}
        self.suspected: Set[NodeId] = set()
        self._rng = member.streams.stream("fd", member.node_id)
        member.extra_handlers[HeartbeatGossip] = self._on_gossip
        self._task = PeriodicTask(member.sim, gossip_interval, self._tick)
        self._task.start(phase=gossip_interval * self._rng.random())

    def stop(self) -> None:
        """Stop gossiping (member shutdown)."""
        self._task.stop()

    # ------------------------------------------------------------------
    # Gossip rounds
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        if not self.member.alive:
            self._task.stop()
            return
        now = self.member.sim.now
        self.heartbeats[self.member.node_id] += 1
        self.last_advanced[self.member.node_id] = now
        peers = [n for n in self.peers_provider() if n != self.member.node_id]
        if peers:
            gossip = HeartbeatGossip(
                sender=self.member.node_id,
                heartbeats=tuple(sorted(self.heartbeats.items())),
            )
            for target in self._rng.sample(peers, min(self.fanout, len(peers))):
                self.member.network.unicast(self.member.node_id, target, gossip)
        self._sweep(now)

    def _on_gossip(self, gossip: HeartbeatGossip) -> None:
        now = self.member.sim.now
        for node, counter in gossip.heartbeats:
            if counter > self.heartbeats.get(node, -1):
                self.heartbeats[node] = counter
                self.last_advanced[node] = now
                if node in self.suspected:
                    # Counter advanced again: rehabilitate.
                    self.suspected.discard(node)
                    self.member.trace.emit(now, "fd_rehabilitated",
                                           node=self.member.node_id, peer=node)

    def _sweep(self, now: float) -> None:
        for node, last in self.last_advanced.items():
            if node == self.member.node_id or node in self.suspected:
                continue
            if now - last >= self.suspect_timeout:
                self.suspected.add(node)
                self.member.trace.emit(now, "fd_suspected",
                                       node=self.member.node_id, peer=node)
                self.on_suspect(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_suspected(self, node: NodeId) -> bool:
        """Whether this detector currently suspects *node*."""
        return node in self.suspected

    def alive_view(self) -> List[NodeId]:
        """Peers known and not suspected (plus self)."""
        return sorted(n for n in self.heartbeats if n not in self.suspected)


def attach_failure_detectors(
    members: Sequence[RrmpMember],
    gossip_interval: float = 20.0,
    suspect_timeout: float = 120.0,
    fanout: int = 1,
) -> List[GossipFailureDetector]:
    """Attach a region-scoped failure detector to each member."""
    detectors = []
    for member in members:
        detectors.append(
            GossipFailureDetector(
                member,
                peers_provider=member.region_member_ids,
                gossip_interval=gossip_interval,
                suspect_timeout=suspect_timeout,
                fanout=fanout,
            )
        )
    return detectors
