"""Approximate membership views (paper §1, footnote 1).

RRMP only assumes "each member has an approximation of the entire
membership … The approximation need not be accurate, but it should be
of good enough quality so that the probability of the group being
logically partitioned into disconnected subgroups is negligible."

The protocol normally queries the live hierarchy; :class:`StaleView`
wraps a member list with bounded staleness so tests and experiments can
check that recovery still converges when views lag churn (removed
members linger in the view; joiners appear late).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from repro.net.topology import NodeId
from repro.sim import Simulator


class StaleView:
    """A membership view refreshed at most every ``refresh_interval`` ms.

    Between refreshes the view returns a frozen snapshot, emulating a
    member whose knowledge of the region lags reality.
    """

    def __init__(
        self,
        sim: Simulator,
        source: Callable[[], Sequence[NodeId]],
        refresh_interval: float,
    ) -> None:
        if refresh_interval < 0:
            raise ValueError(f"refresh_interval must be >= 0, got {refresh_interval!r}")
        self._sim = sim
        self._source = source
        self.refresh_interval = refresh_interval
        self._snapshot: List[NodeId] = list(source())
        self._snapshot_time = sim.now

    def members(self) -> List[NodeId]:
        """The (possibly stale) member list."""
        if self._sim.now - self._snapshot_time >= self.refresh_interval:
            self.refresh()
        return list(self._snapshot)

    def refresh(self) -> None:
        """Force a resynchronisation with the live source."""
        self._snapshot = list(self._source())
        self._snapshot_time = self._sim.now

    @property
    def staleness(self) -> float:
        """Milliseconds since the snapshot was taken."""
        return self._sim.now - self._snapshot_time

    def __contains__(self, node: NodeId) -> bool:
        return node in self._snapshot

    def __len__(self) -> int:
        return len(self._snapshot)
